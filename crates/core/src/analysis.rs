//! The analytic model of §6 (query randomization) and §6.1 (error rates).
//!
//! * [`expected_zeros`] — `F(x)`: expected number of zero bits in an index built from `x`
//!   keywords.
//! * [`expected_common_zeros`] — `C(x)`: expected number of zero positions an `x`-keyword
//!   index shares with a single-keyword index.
//! * [`expected_hamming_distance`] — `Δ(Q₁, Q₂)` of Eq. (5) for two `x`-keyword queries with
//!   `x̄` keywords in common.
//! * [`expected_random_overlap`] — `EO` of Eq. (6): the expected number of common fake
//!   keywords between two queries drawing `V` out of `U = 2V`.
//! * [`Histogram`] — fixed-width histogram used to regenerate Figure 2.
//! * [`false_accept_rate`] — the FAR statistic of §6.1 / Figure 3.

use crate::params::SystemParams;
use serde::{Deserialize, Serialize};

/// `F(x)`: expected number of 0 bits in an index with `x` keywords.
///
/// The paper defines it by the recurrence `F(1) = r/2^d`, `F(x) = F(x−1) + F(1) − C(x−1)`,
/// with `C(x) = F(x)/2^d`. The closed form is `F(x) = r·(1 − (1 − 2^−d)^x)`, which this
/// function evaluates directly (the recurrence is exercised against it in the tests).
pub fn expected_zeros(params: &SystemParams, num_keywords: usize) -> f64 {
    let r = params.index_bits as f64;
    let p = params.zero_bit_probability();
    r * (1.0 - (1.0 - p).powi(num_keywords as i32))
}

/// `F(x)` computed by the paper's recurrence (kept for validation and documentation).
pub fn expected_zeros_recurrence(params: &SystemParams, num_keywords: usize) -> f64 {
    if num_keywords == 0 {
        return 0.0;
    }
    let f1 = params.index_bits as f64 * params.zero_bit_probability();
    let mut f = f1;
    for _ in 1..num_keywords {
        let c = f * params.zero_bit_probability();
        f = f + f1 - c;
    }
    f
}

/// `C(x)`: expected number of zero positions shared between an `x`-keyword index and an
/// independent single-keyword index.
pub fn expected_common_zeros(params: &SystemParams, num_keywords: usize) -> f64 {
    expected_zeros(params, num_keywords) * params.zero_bit_probability()
}

/// `Δ(Q₁, Q₂)` of Eq. (5): expected Hamming distance between two query indices with `x`
/// keywords each, `x_common` of which are shared.
pub fn expected_hamming_distance(params: &SystemParams, x: usize, x_common: usize) -> f64 {
    assert!(
        x_common <= x,
        "common keywords cannot exceed total keywords"
    );
    let r = params.index_bits as f64;
    let fx = expected_zeros(params, x);
    let fbar = expected_zeros(params, x_common);
    (fx - fbar) * (r - fx) / r + fx * (r - fx) / r
}

/// `EO` of Eq. (6): expected number of fake keywords shared by two queries that each draw `V`
/// keywords out of a pool of `U = 2V`; equals `V/2`.
pub fn expected_random_overlap(v: usize) -> f64 {
    v as f64 / 2.0
}

/// Exact hypergeometric expectation of the overlap when each query draws `v` keywords out of
/// a pool of `u` (Eq. 6 generalized beyond `u = 2v`): `v²/u`.
pub fn expected_random_overlap_general(u: usize, v: usize) -> f64 {
    assert!(v <= u, "cannot draw more keywords than the pool holds");
    if u == 0 {
        return 0.0;
    }
    (v * v) as f64 / u as f64
}

/// A fixed-width histogram over `[min, max)`, used to regenerate the Figure 2 distance
/// histograms.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    bucket_width: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create a histogram spanning `[min, max)` with `buckets` equal-width buckets.
    pub fn new(min: f64, max: f64, buckets: usize) -> Self {
        assert!(max > min && buckets > 0);
        Histogram {
            min,
            max,
            bucket_width: (max - min) / buckets as f64,
            counts: vec![0; buckets],
            total: 0,
        }
    }

    /// Record one observation (values outside the range are clamped into the end buckets).
    pub fn record(&mut self, value: f64) {
        let idx = ((value - self.min) / self.bucket_width).floor();
        let idx = idx.clamp(0.0, (self.counts.len() - 1) as f64) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Record many observations.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The lower edge of bucket `i`.
    pub fn bucket_start(&self, i: usize) -> f64 {
        self.min + i as f64 * self.bucket_width
    }

    /// Fraction of observations strictly below `value`.
    pub fn fraction_below(&self, value: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut below = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if self.bucket_start(i) + self.bucket_width <= value {
                below += c;
            }
        }
        below as f64 / self.total as f64
    }

    /// Histogram overlap coefficient with another histogram over the same buckets:
    /// `Σ_i min(p_i, q_i)` where `p`, `q` are the normalized bucket probabilities. 1.0 means
    /// the two distributions are indistinguishable from these samples; values near 1 are what
    /// Figure 2(a) demonstrates for same-keyword vs different-keyword query pairs.
    pub fn overlap_coefficient(&self, other: &Histogram) -> f64 {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "bucket count mismatch"
        );
        if self.total == 0 || other.total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .zip(other.counts.iter())
            .map(|(&a, &b)| (a as f64 / self.total as f64).min(b as f64 / other.total as f64))
            .sum()
    }
}

/// False-accept-rate statistic of §6.1: `FAR = incorrect matches / all matches`.
///
/// `matched` is the set of documents the scheme returned; `ground_truth` is the set that
/// actually contains every queried keyword. Returns `None` when there were no matches at all
/// (FAR is undefined in that case).
pub fn false_accept_rate(matched: &[u64], ground_truth: &[u64]) -> Option<f64> {
    if matched.is_empty() {
        return None;
    }
    let truth: std::collections::HashSet<u64> = ground_truth.iter().copied().collect();
    let incorrect = matched.iter().filter(|id| !truth.contains(id)).count();
    Some(incorrect as f64 / matched.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitindex::BitIndex;
    use crate::keys::SchemeKeys;
    use crate::keyword::keyword_index;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> SystemParams {
        SystemParams::default()
    }

    #[test]
    fn f1_is_r_over_2d() {
        let p = params();
        assert!((expected_zeros(&p, 1) - 7.0).abs() < 1e-9);
        assert_eq!(expected_zeros(&p, 0), 0.0);
    }

    #[test]
    fn closed_form_matches_recurrence() {
        let p = params();
        for x in 1..=80 {
            let closed = expected_zeros(&p, x);
            let rec = expected_zeros_recurrence(&p, x);
            assert!((closed - rec).abs() < 1e-6, "x={x}: {closed} vs {rec}");
        }
    }

    #[test]
    fn expected_zeros_is_monotone_and_bounded() {
        let p = params();
        let mut prev = 0.0;
        for x in 1..200 {
            let f = expected_zeros(&p, x);
            assert!(f > prev);
            assert!(f < p.index_bits as f64);
            prev = f;
        }
    }

    #[test]
    fn common_zeros_is_f_over_2d() {
        let p = params();
        let f30 = expected_zeros(&p, 30);
        assert!((expected_common_zeros(&p, 30) - f30 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn hamming_distance_zero_for_fully_shared_queries() {
        // If both queries contain exactly the same keywords (x̄ = x), the first term of Eq. (5)
        // vanishes but the second remains: deterministic indices would actually be identical,
        // and indeed the paper's formula models *independent* draws of the non-shared part, so
        // Δ(x, x) reduces to F(x)(r−F(x))/r.
        let p = params();
        let x = 31;
        let expected = expected_zeros(&p, x) * (p.index_bits as f64 - expected_zeros(&p, x))
            / p.index_bits as f64;
        assert!((expected_hamming_distance(&p, x, x) - expected).abs() < 1e-9);
    }

    #[test]
    fn hamming_distance_grows_as_overlap_shrinks() {
        let p = params();
        let x = 33; // e.g. 3 genuine + 30 random keywords
        let mut prev = f64::MAX;
        for common in 0..=x {
            // More shared keywords → smaller expected distance.
            let d = expected_hamming_distance(&p, x, common);
            assert!(d <= prev + 1e-9, "common={common}");
            prev = d;
        }
    }

    #[test]
    #[should_panic(expected = "common keywords cannot exceed")]
    fn hamming_distance_rejects_invalid_overlap() {
        let _ = expected_hamming_distance(&params(), 3, 4);
    }

    #[test]
    fn random_overlap_expectations() {
        assert_eq!(expected_random_overlap(30), 15.0);
        assert_eq!(expected_random_overlap_general(60, 30), 15.0);
        assert_eq!(expected_random_overlap_general(10, 10), 10.0);
        assert_eq!(expected_random_overlap_general(10, 0), 0.0);
        assert_eq!(expected_random_overlap_general(0, 0), 0.0);
    }

    #[test]
    fn analytic_f_matches_empirical_zero_counts() {
        // Build indices from x real keywords and compare the measured zero count with F(x).
        let p = params();
        let keys = SchemeKeys::generate(&p, &mut StdRng::seed_from_u64(3));
        for &x in &[1usize, 5, 20, 40] {
            let trials = 40;
            let mut total_zeros = 0usize;
            for t in 0..trials {
                let mut idx = BitIndex::all_ones(p.index_bits);
                for i in 0..x {
                    let kw = format!("kw-{t}-{i}");
                    idx.bitwise_product_assign(keys.trapdoor_for(&p, &kw).index());
                }
                total_zeros += idx.count_zeros();
            }
            let measured = total_zeros as f64 / trials as f64;
            let predicted = expected_zeros(&p, x);
            let tolerance = 3.0 + 0.15 * predicted;
            assert!(
                (measured - predicted).abs() < tolerance,
                "x={x}: measured {measured}, predicted {predicted}"
            );
        }
    }

    #[test]
    fn analytic_hamming_matches_empirical_distance() {
        // Two queries with x keywords each sharing x̄: build them from real keyword indices
        // and compare the mean Hamming distance with Eq. (5).
        let p = params();
        let keys = SchemeKeys::generate(&p, &mut StdRng::seed_from_u64(4));
        let x = 10usize;
        let x_bar = 4usize;
        let trials = 60;
        let mut total = 0usize;
        for t in 0..trials {
            let shared: Vec<String> = (0..x_bar).map(|i| format!("shared-{t}-{i}")).collect();
            let build = |tag: &str| {
                let mut idx = BitIndex::all_ones(p.index_bits);
                for s in &shared {
                    idx.bitwise_product_assign(keys.trapdoor_for(&p, s).index());
                }
                for i in 0..(x - x_bar) {
                    let kw = format!("{tag}-{t}-{i}");
                    idx.bitwise_product_assign(keys.trapdoor_for(&p, &kw).index());
                }
                idx
            };
            total += build("left").hamming_distance(&build("right"));
        }
        let measured = total as f64 / trials as f64;
        let predicted = expected_hamming_distance(&p, x, x_bar);
        assert!(
            (measured - predicted).abs() < 0.25 * predicted + 3.0,
            "measured {measured}, predicted {predicted}"
        );
    }

    #[test]
    fn keyword_index_zero_count_concentrates_near_f1() {
        let p = params();
        let total: usize = (0..100)
            .map(|i| keyword_index(&p, b"key", &format!("w{i}")).count_zeros())
            .sum();
        let avg = total as f64 / 100.0;
        assert!((avg - expected_zeros(&p, 1)).abs() < 2.0, "avg = {avg}");
    }

    #[test]
    fn histogram_records_and_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record_all([0.5, 1.5, 1.7, 9.9, 100.0, -5.0]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts()[0], 2); // 0.5 and the clamped -5.0
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 2); // 9.9 and the clamped 100.0
        assert_eq!(h.bucket_start(3), 3.0);
        assert!((h.fraction_below(2.0) - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_overlap_coefficient_bounds() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.record_all([1.0, 1.0, 3.0, 7.0]);
        b.record_all([1.0, 3.0, 3.0, 9.0]);
        let o = a.overlap_coefficient(&b);
        assert!(o > 0.0 && o < 1.0);
        assert!((a.overlap_coefficient(&a) - 1.0).abs() < 1e-9);
        let empty = Histogram::new(0.0, 10.0, 5);
        assert_eq!(a.overlap_coefficient(&empty), 0.0);
    }

    #[test]
    fn far_statistic() {
        assert_eq!(false_accept_rate(&[], &[1, 2]), None);
        assert_eq!(false_accept_rate(&[1, 2], &[1, 2]), Some(0.0));
        assert_eq!(false_accept_rate(&[1, 2, 3, 4], &[1, 2]), Some(0.5));
        assert_eq!(false_accept_rate(&[5], &[]), Some(1.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_expected_zeros_never_exceeds_r(x in 0usize..500) {
            let p = params();
            let f = expected_zeros(&p, x);
            prop_assert!(f >= 0.0);
            prop_assert!(f <= p.index_bits as f64);
        }

        #[test]
        fn prop_hamming_distance_nonnegative(x in 1usize..100, frac in 0.0f64..1.0) {
            let p = params();
            let common = (x as f64 * frac) as usize;
            let d = expected_hamming_distance(&p, x, common);
            prop_assert!(d >= -1e-9);
            prop_assert!(d <= p.index_bits as f64);
        }

        #[test]
        fn prop_far_is_a_fraction(
            matched in proptest::collection::vec(0u64..50, 1..30),
            truth in proptest::collection::vec(0u64..50, 0..30),
        ) {
            let far = false_accept_rate(&matched, &truth).unwrap();
            prop_assert!((0.0..=1.0).contains(&far));
        }
    }
}
