//! Binary serialization of searchable indices.
//!
//! The cloud server in the paper's model is a long-lived service: the data owner uploads the
//! search index files once (offline phase) and the server keeps them across restarts. This
//! module gives [`RankedDocumentIndex`] and whole index stores a compact, versioned binary
//! encoding — `8 + η·⌈r/8⌉` bytes per document, matching the storage-overhead analysis at the
//! end of §5 — without pulling in any serialization framework beyond what the index itself
//! needs.
//!
//! Snapshots capture **only** the stored indices: the result cache of
//! [`crate::engine::SearchEngine`] is derived state and is never serialized, and so
//! is the block-major [`crate::scanplane::ScanPlane`] — the byte format is
//! **layout-independent** (insertion order, one document at a time), and restoring
//! funnels every decoded index through [`IndexStore::insert`], which rebuilds the
//! destination store's planes as a side effect. Restoring through
//! [`crate::engine::SearchEngine::restore_snapshot`] (or any path through
//! `store_mut`) bumps every cache generation, so entries cached before a reload can
//! never be served after it.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! store  := magic "MKSE" | version u16 | r u32 | eta u16 | count u64 | entry*
//! entry  := document_id u64 | level_bits × eta
//! ```

use crate::bitindex::BitIndex;
use crate::document_index::RankedDocumentIndex;
use crate::params::SystemParams;
use crate::storage::{IndexStore, StoreError};

const MAGIC: &[u8; 4] = b"MKSE";
const VERSION: u16 = 1;

/// Errors produced while decoding a serialized index store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistenceError {
    /// The buffer does not start with the `MKSE` magic.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u16),
    /// The buffer ended before the declared content.
    Truncated,
    /// The declared geometry does not match the supplied parameters.
    ParameterMismatch {
        expected_r: usize,
        found_r: usize,
        expected_eta: usize,
        found_eta: usize,
    },
    /// A decoded index was rejected by the destination store (e.g. duplicate id).
    Store(StoreError),
}

impl std::fmt::Display for PersistenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistenceError::BadMagic => write!(f, "not an MKSE index store"),
            PersistenceError::UnsupportedVersion(v) => write!(f, "unsupported store version {v}"),
            PersistenceError::Truncated => write!(f, "store is truncated"),
            PersistenceError::ParameterMismatch {
                expected_r,
                found_r,
                expected_eta,
                found_eta,
            } => {
                write!(
                    f,
                    "parameter mismatch: store has r={found_r}, eta={found_eta}; expected r={expected_r}, eta={expected_eta}"
                )
            }
            PersistenceError::Store(e) => write!(f, "store rejected decoded index: {e}"),
        }
    }
}

impl std::error::Error for PersistenceError {}

impl From<StoreError> for PersistenceError {
    fn from(e: StoreError) -> Self {
        PersistenceError::Store(e)
    }
}

/// Serialize a collection of document indices into the binary store format.
///
/// Panics if any index disagrees with `params` on the index size or level count (the same
/// invariant [`crate::search::CloudIndex::insert`] enforces).
pub fn serialize_store(params: &SystemParams, indices: &[RankedDocumentIndex]) -> Vec<u8> {
    let r_bytes = params.index_bits.div_ceil(8);
    let eta = params.rank_levels();
    let mut out = Vec::with_capacity(20 + indices.len() * (8 + eta * r_bytes));
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(params.index_bits as u32).to_le_bytes());
    out.extend_from_slice(&(eta as u16).to_le_bytes());
    out.extend_from_slice(&(indices.len() as u64).to_le_bytes());
    for idx in indices {
        assert_eq!(idx.num_levels(), eta, "level count mismatch");
        out.extend_from_slice(&idx.document_id.to_le_bytes());
        for level in &idx.levels {
            assert_eq!(level.len(), params.index_bits, "index size mismatch");
            out.extend_from_slice(&level.to_bytes());
        }
    }
    out
}

/// Decode a binary store produced by [`serialize_store`], validating it against `params`.
pub fn deserialize_store(
    params: &SystemParams,
    bytes: &[u8],
) -> Result<Vec<RankedDocumentIndex>, PersistenceError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    if cursor.take(4)? != MAGIC {
        return Err(PersistenceError::BadMagic);
    }
    let version = u16::from_le_bytes(cursor.take(2)?.try_into().unwrap());
    if version != VERSION {
        return Err(PersistenceError::UnsupportedVersion(version));
    }
    let r = u32::from_le_bytes(cursor.take(4)?.try_into().unwrap()) as usize;
    let eta = u16::from_le_bytes(cursor.take(2)?.try_into().unwrap()) as usize;
    if r != params.index_bits || eta != params.rank_levels() {
        return Err(PersistenceError::ParameterMismatch {
            expected_r: params.index_bits,
            found_r: r,
            expected_eta: params.rank_levels(),
            found_eta: eta,
        });
    }
    let count = u64::from_le_bytes(cursor.take(8)?.try_into().unwrap()) as usize;
    let r_bytes = r.div_ceil(8);
    let mut indices = Vec::with_capacity(count);
    for _ in 0..count {
        let document_id = u64::from_le_bytes(cursor.take(8)?.try_into().unwrap());
        let mut levels = Vec::with_capacity(eta);
        for _ in 0..eta {
            levels.push(BitIndex::from_bytes(cursor.take(r_bytes)?, r));
        }
        indices.push(RankedDocumentIndex {
            document_id,
            levels,
        });
    }
    Ok(indices)
}

/// Snapshot any [`IndexStore`] into the binary store format, in insertion order.
///
/// The byte output is **layout-independent**: a sharded store and the sequential
/// reference store holding the same uploads serialize identically, so snapshots can
/// be restored into a store with any shard count.
pub fn serialize_index_store<S: IndexStore>(store: &S) -> Vec<u8> {
    let ordered: Vec<RankedDocumentIndex> = store
        .documents_in_insertion_order()
        .into_iter()
        .cloned()
        .collect();
    serialize_store(store.params(), &ordered)
}

/// Snapshot a **single shard** of an [`IndexStore`] into the same versioned
/// binary format — the re-assignment currency of the fleet layer: when a node
/// dies, the coordinator ships exactly the lost shards to survivors instead of
/// a whole-store snapshot.
///
/// Within one shard, slot order *is* global insertion order restricted to that
/// shard (round-robin placement makes ordinals monotone in the slot), so the
/// slice is already ordered and the output stays **layout-independent**: it can
/// be restored through [`deserialize_into`] into a store with any shard count,
/// and funnels through [`IndexStore::insert`] like every other mutation path.
pub fn serialize_shard<S: IndexStore>(store: &S, shard: usize) -> Vec<u8> {
    serialize_store(store.params(), store.shard_documents(shard))
}

/// Restore a snapshot produced by [`serialize_index_store`] (or [`serialize_store`])
/// into `store`, appending the decoded indices in their original insertion order.
///
/// Returns the number of restored documents.
pub fn deserialize_into<S: IndexStore>(
    store: &mut S,
    bytes: &[u8],
) -> Result<usize, PersistenceError> {
    let indices = deserialize_store(store.params(), bytes)?;
    let count = indices.len();
    for idx in indices {
        store.insert(idx)?;
    }
    Ok(count)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], PersistenceError> {
        if self.pos + len > self.bytes.len() {
            return Err(PersistenceError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document_index::DocumentIndexer;
    use crate::keys::SchemeKeys;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_indices(params: &SystemParams, n: u64) -> Vec<RankedDocumentIndex> {
        let keys = SchemeKeys::generate(params, &mut StdRng::seed_from_u64(1));
        let indexer = DocumentIndexer::new(params, &keys);
        (0..n)
            .map(|id| indexer.index_keywords(id, &[&format!("kw{id}"), "shared"]))
            .collect()
    }

    #[test]
    fn round_trip_preserves_every_index() {
        let params = SystemParams::default();
        let indices = sample_indices(&params, 5);
        let bytes = serialize_store(&params, &indices);
        let decoded = deserialize_store(&params, &bytes).unwrap();
        assert_eq!(decoded, indices);
        // Size matches the §5 storage analysis: header + n·(8 + η·r/8).
        assert_eq!(bytes.len(), 20 + 5 * (8 + 3 * 56));
    }

    #[test]
    fn empty_store_round_trips() {
        let params = SystemParams::without_ranking();
        let bytes = serialize_store(&params, &[]);
        assert!(deserialize_store(&params, &bytes).unwrap().is_empty());
    }

    #[test]
    fn corrupted_magic_and_version_are_rejected() {
        let params = SystemParams::default();
        let mut bytes = serialize_store(&params, &sample_indices(&params, 1));
        bytes[0] = b'X';
        assert_eq!(
            deserialize_store(&params, &bytes),
            Err(PersistenceError::BadMagic)
        );

        let mut bytes = serialize_store(&params, &sample_indices(&params, 1));
        bytes[4] = 0xff;
        assert!(matches!(
            deserialize_store(&params, &bytes),
            Err(PersistenceError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn truncated_store_is_rejected() {
        let params = SystemParams::default();
        let bytes = serialize_store(&params, &sample_indices(&params, 2));
        for cut in [3usize, 10, 21, bytes.len() - 1] {
            assert_eq!(
                deserialize_store(&params, &bytes[..cut]),
                Err(PersistenceError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn parameter_mismatch_is_rejected() {
        let params3 = SystemParams::default();
        let params1 = SystemParams::without_ranking();
        let bytes = serialize_store(&params3, &sample_indices(&params3, 1));
        assert!(matches!(
            deserialize_store(&params1, &bytes),
            Err(PersistenceError::ParameterMismatch { .. })
        ));
    }

    #[test]
    fn error_display() {
        assert!(!format!("{}", PersistenceError::BadMagic).is_empty());
        assert!(format!("{}", PersistenceError::UnsupportedVersion(9)).contains('9'));
        assert!(!format!("{}", PersistenceError::Truncated).is_empty());
    }

    #[test]
    fn sharded_snapshot_equals_sequential_snapshot() {
        use crate::storage::{IndexStore, ShardedStore, VecStore};
        let params = SystemParams::default();
        let indices = sample_indices(&params, 11);
        let mut sequential = VecStore::new(params.clone());
        sequential.insert_all(indices.iter().cloned()).unwrap();
        let mut sharded = ShardedStore::new(params.clone(), 4);
        sharded.insert_all(indices.iter().cloned()).unwrap();
        // Layout independence: both snapshots are byte-identical.
        let bytes = serialize_index_store(&sequential);
        assert_eq!(bytes, serialize_index_store(&sharded));
        assert_eq!(bytes, serialize_store(&params, &indices));
        // Restoring into a store with a different shard count preserves content.
        let mut restored = ShardedStore::new(params.clone(), 7);
        assert_eq!(deserialize_into(&mut restored, &bytes).unwrap(), 11);
        assert_eq!(
            restored
                .documents_in_insertion_order()
                .into_iter()
                .cloned()
                .collect::<Vec<_>>(),
            indices
        );
    }

    #[test]
    fn per_shard_snapshots_cover_the_store_and_restore_anywhere() {
        use crate::storage::{IndexStore, ShardedStore, VecStore};
        let params = SystemParams::default();
        let indices = sample_indices(&params, 13);
        let mut sharded = ShardedStore::new(params.clone(), 4);
        sharded.insert_all(indices.iter().cloned()).unwrap();

        // Each shard slice serializes exactly that shard's documents in slot
        // (= per-shard insertion) order.
        let mut total = 0usize;
        for shard in 0..sharded.num_shards() {
            let bytes = serialize_shard(&sharded, shard);
            assert_eq!(
                bytes,
                serialize_store(&params, sharded.shard_documents(shard))
            );
            let decoded = deserialize_store(&params, &bytes).unwrap();
            assert_eq!(decoded.as_slice(), sharded.shard_documents(shard));
            total += decoded.len();
        }
        assert_eq!(total, sharded.len(), "shard slices cover the store");

        // Restoring every slice into a differently-sharded store recovers the
        // full corpus, regardless of the destination layout.
        let mut restored = ShardedStore::new(params.clone(), 3);
        for shard in 0..sharded.num_shards() {
            deserialize_into(&mut restored, &serialize_shard(&sharded, shard)).unwrap();
        }
        assert_eq!(restored.len(), sharded.len());
        for idx in &indices {
            assert_eq!(restored.document_index(idx.document_id), Some(idx));
        }

        // A single-shard store's one slice equals its whole-store snapshot.
        let mut vec_store = VecStore::new(params.clone());
        vec_store.insert_all(indices.iter().cloned()).unwrap();
        assert_eq!(
            serialize_shard(&vec_store, 0),
            serialize_index_store(&vec_store)
        );
    }

    #[test]
    fn restore_rebuilds_scan_planes() {
        use crate::storage::{IndexStore, ShardedStore};
        let params = SystemParams::default();
        let indices = sample_indices(&params, 9);
        let bytes = serialize_store(&params, &indices);
        let mut restored = ShardedStore::new(params.clone(), 4);
        assert_eq!(deserialize_into(&mut restored, &bytes).unwrap(), 9);
        for shard in 0..restored.num_shards() {
            let plane = restored.scan_plane(shard).expect("plane maintained");
            let docs = restored.shard_documents(shard);
            assert_eq!(plane.len(), docs.len(), "shard {shard}");
            let ids: Vec<u64> = docs.iter().map(|d| d.document_id).collect();
            assert_eq!(plane.ids(), &ids[..], "shard {shard}");
        }
    }

    #[test]
    fn restoring_into_a_populated_store_rejects_duplicates() {
        use crate::storage::{IndexStore, ShardedStore};
        let params = SystemParams::default();
        let indices = sample_indices(&params, 3);
        let bytes = serialize_store(&params, &indices);
        let mut store = ShardedStore::new(params.clone(), 2);
        store.insert(indices[1].clone()).unwrap();
        assert!(matches!(
            deserialize_into(&mut store, &bytes),
            Err(PersistenceError::Store(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_round_trip_arbitrary_store_sizes(n in 0u64..20) {
            let params = SystemParams::with_five_levels();
            let indices = sample_indices(&params, n);
            let decoded = deserialize_store(&params, &serialize_store(&params, &indices)).unwrap();
            prop_assert_eq!(decoded, indices);
        }
    }
}
