//! Lock-free telemetry plane: counters, gauges, log₂-bucketed latency
//! histograms, per-lane scheduler stats and per-shard cache stats.
//!
//! Design constraints (house invariants):
//!
//! - **No allocation on the hot path.** Every recording primitive is a
//!   fixed-slot [`AtomicU64`] touched with [`Ordering::Relaxed`]. Allocation
//!   happens only in [`Telemetry::snapshot`], which is a cold diagnostic op.
//! - **Runtime-gated no-ops.** A [`TelemetryLevel`] knob (an `AtomicU8` on the
//!   shared state) gates everything: at `Off` every recording call returns
//!   after a single relaxed load; at `Counters` only counter/gauge/lane/shard
//!   adds run; timers ([`Telemetry::span`]) exist only at `Spans`.
//! - **Telemetry is invisible.** Nothing in this module feeds back into the
//!   search path: replies, `SearchStats`, cache counters and wire bytes are
//!   byte-identical whatever the level. The equivalence suite proves this.
//!
//! Leakage note (§6 discipline): every quantity recorded here is a function
//! of bytes the server already observes (framed request/response sizes,
//! opcount) plus public geometry (shard count, lane count, chunk ranges).
//! Spans observe wall-clock durations of work the server itself performs;
//! they reorder and observe nothing about plaintexts or trapdoor contents.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How much the registry records. Runtime knob; default [`Off`].
///
/// [`Off`]: TelemetryLevel::Off
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TelemetryLevel {
    /// Record nothing; every hot-path call is a single relaxed load.
    #[default]
    Off = 0,
    /// Record counters, gauges, per-lane and per-shard stats — no timers.
    Counters = 1,
    /// Everything in `Counters` plus stage-duration histograms (spans).
    Spans = 2,
}

impl TelemetryLevel {
    /// Decode from the wire representation.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Self::Off),
            1 => Some(Self::Counters),
            2 => Some(Self::Spans),
            _ => None,
        }
    }

    /// Stable lowercase name used by renderers and reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::Counters => "counters",
            Self::Spans => "spans",
        }
    }

    /// True when counters/gauges/lane/shard stats record (Counters or Spans).
    pub fn counters_enabled(self) -> bool {
        !matches!(self, Self::Off)
    }

    /// True when duration histograms record (Spans only).
    pub fn spans_enabled(self) -> bool {
        matches!(self, Self::Spans)
    }
}

/// Monotonic event counters. Fixed enum so the registry is one flat array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Requests served by the `Service` (every envelope op).
    RequestsServed = 0,
    /// Single ranked queries executed by the engine.
    Queries,
    /// Fused batch sweeps executed by the engine.
    Batches,
    /// Queries carried inside those batches (pre-dedup).
    BatchQueries,
    /// Document insertions.
    Inserts,
    /// Shard scans actually performed (cache misses; fused passes count
    /// one per shard swept).
    ShardScans,
    /// Framed requests decoded by `serve`.
    WireFramesIn,
    /// Framed responses encoded by `serve`.
    WireFramesOut,
    /// Framed request bytes in (length prefix included).
    WireBytesIn,
    /// Framed response bytes out (length prefix included).
    WireBytesOut,
    /// Transport connections accepted (TCP or in-process).
    ConnectionsOpened,
    /// Transport connections closed (graceful, faulted or idle-timed-out).
    ConnectionsClosed,
    /// Single-query requests the cross-client batcher executed inside a
    /// fused group (coalesced across connections).
    BatcherCoalesced,
    /// Single-query requests dispatched immediately because only one
    /// connection was active (no coalescing opportunity).
    BatcherSolo,
    /// Batcher flushes because the collection window expired.
    BatcherFlushWindow,
    /// Batcher flushes because the pending group reached the depth limit.
    BatcherFlushDepth,
    /// Batcher flushes forced by a non-batchable request on any connection
    /// (preserves the arrival-order linearization).
    BatcherFlushBarrier,
    /// Batcher flushes forced by graceful shutdown (drain, never drop).
    BatcherFlushShutdown,
    /// Client-side request attempts beyond the first (resubmissions after a
    /// link fault, a lost reply, or an overload shed).
    Retries,
    /// Client-side connection re-establishments after a link died.
    Reconnects,
    /// Requests the hub refused *before execution* because the hub-wide
    /// in-flight budget was exhausted (answered with
    /// `TransportError::Overloaded` instead of stalling the reader).
    Sheds,
    /// Fault events a chaos harness injected into a link (kills, torn
    /// writes, corrupted bytes, delays).
    FaultsInjected,
    /// Fleet failovers executed: a node was declared dead and its shards
    /// re-assigned to survivors.
    Failovers,
    /// Heartbeat deadlines a node missed (each sweep that found the node
    /// silent past its failure deadline).
    HeartbeatsMissed,
    /// Shards shipped to a surviving node during failovers.
    ShardsReassigned,
}

impl Counter {
    /// All counters, in wire/report order.
    pub const ALL: [Counter; 25] = [
        Counter::RequestsServed,
        Counter::Queries,
        Counter::Batches,
        Counter::BatchQueries,
        Counter::Inserts,
        Counter::ShardScans,
        Counter::WireFramesIn,
        Counter::WireFramesOut,
        Counter::WireBytesIn,
        Counter::WireBytesOut,
        Counter::ConnectionsOpened,
        Counter::ConnectionsClosed,
        Counter::BatcherCoalesced,
        Counter::BatcherSolo,
        Counter::BatcherFlushWindow,
        Counter::BatcherFlushDepth,
        Counter::BatcherFlushBarrier,
        Counter::BatcherFlushShutdown,
        Counter::Retries,
        Counter::Reconnects,
        Counter::Sheds,
        Counter::FaultsInjected,
        Counter::Failovers,
        Counter::HeartbeatsMissed,
        Counter::ShardsReassigned,
    ];

    /// Stable snake_case name used by the exposition formats.
    pub fn name(self) -> &'static str {
        match self {
            Counter::RequestsServed => "requests_served",
            Counter::Queries => "queries",
            Counter::Batches => "batches",
            Counter::BatchQueries => "batch_queries",
            Counter::Inserts => "inserts",
            Counter::ShardScans => "shard_scans",
            Counter::WireFramesIn => "wire_frames_in",
            Counter::WireFramesOut => "wire_frames_out",
            Counter::WireBytesIn => "wire_bytes_in",
            Counter::WireBytesOut => "wire_bytes_out",
            Counter::ConnectionsOpened => "connections_opened",
            Counter::ConnectionsClosed => "connections_closed",
            Counter::BatcherCoalesced => "batcher_coalesced_queries",
            Counter::BatcherSolo => "batcher_solo_dispatches",
            Counter::BatcherFlushWindow => "batcher_flush_window",
            Counter::BatcherFlushDepth => "batcher_flush_depth",
            Counter::BatcherFlushBarrier => "batcher_flush_barrier",
            Counter::BatcherFlushShutdown => "batcher_flush_shutdown",
            Counter::Retries => "retries",
            Counter::Reconnects => "reconnects",
            Counter::Sheds => "sheds",
            Counter::FaultsInjected => "faults_injected",
            Counter::Failovers => "failovers",
            Counter::HeartbeatsMissed => "heartbeats_missed",
            Counter::ShardsReassigned => "shards_reassigned",
        }
    }
}

/// Last-write-wins gauges (current values, not monotonic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Cached query results currently resident (all shards).
    CacheEntries = 0,
    /// Configured scan-lane count.
    ScanLanes,
    /// Documents in the store.
    StoreDocuments,
    /// Shards in the store.
    StoreShards,
    /// Transport connections currently open.
    OpenConnections,
    /// Shard-server nodes that ever registered with the fleet coordinator.
    NodesRegistered,
    /// Shard-server nodes currently live (registered and inside their
    /// failure deadline).
    NodesLive,
}

impl Gauge {
    /// All gauges, in wire/report order.
    pub const ALL: [Gauge; 7] = [
        Gauge::CacheEntries,
        Gauge::ScanLanes,
        Gauge::StoreDocuments,
        Gauge::StoreShards,
        Gauge::OpenConnections,
        Gauge::NodesRegistered,
        Gauge::NodesLive,
    ];

    /// Stable snake_case name used by the exposition formats.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::CacheEntries => "cache_entries",
            Gauge::ScanLanes => "scan_lanes",
            Gauge::StoreDocuments => "store_documents",
            Gauge::StoreShards => "store_shards",
            Gauge::OpenConnections => "open_connections",
            Gauge::NodesRegistered => "nodes_registered",
            Gauge::NodesLive => "nodes_live",
        }
    }
}

/// Pipeline stages whose durations the span layer histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// One `Service::call` dispatch (any op).
    ServiceCall = 0,
    /// One ranked engine query end to end.
    EngineQuery,
    /// One fused batch sweep end to end.
    EngineBatch,
    /// One scheduler unit scanned by a lane: a chunk range on the
    /// work-stealing path, a whole shard on the static path.
    UnitScan,
    /// Cache lookup pass (all shards, lock held once).
    CacheLookup,
    /// Cache admission pass (all misses, lock held once).
    CacheAdmit,
    /// Encoding one response frame.
    FrameEncode,
    /// Decoding one request wire (all frames of a flushed outbox).
    FrameDecode,
    /// Time a coalesced query spent waiting in the cross-client batcher
    /// (arrival in the pending group → fused dispatch).
    BatcherWait,
    /// Time a resilient client slept backing off between request attempts
    /// (exponential backoff and honored `retry_after_ms` hints).
    BackoffWait,
    /// One fleet failover end to end: dead-node detection → lost shards
    /// shipped to survivors → journaled writes replayed.
    FailoverDuration,
}

impl Stage {
    /// All stages, in wire/report order.
    pub const ALL: [Stage; 11] = [
        Stage::ServiceCall,
        Stage::EngineQuery,
        Stage::EngineBatch,
        Stage::UnitScan,
        Stage::CacheLookup,
        Stage::CacheAdmit,
        Stage::FrameEncode,
        Stage::FrameDecode,
        Stage::BatcherWait,
        Stage::BackoffWait,
        Stage::FailoverDuration,
    ];

    /// Stable snake_case name used by the exposition formats.
    pub fn name(self) -> &'static str {
        match self {
            Stage::ServiceCall => "service_call",
            Stage::EngineQuery => "engine_query",
            Stage::EngineBatch => "engine_batch",
            Stage::UnitScan => "unit_scan",
            Stage::CacheLookup => "cache_lookup",
            Stage::CacheAdmit => "cache_admit",
            Stage::FrameEncode => "frame_encode",
            Stage::FrameDecode => "frame_decode",
            Stage::BatcherWait => "batcher_wait",
            Stage::BackoffWait => "backoff_wait",
            Stage::FailoverDuration => "failover_duration",
        }
    }
}

/// Unit-free quantities histogrammed with the same log₂ buckets as stage
/// durations — counts, not nanoseconds (kept as a separate family so the
/// renderers never mislabel them as latencies).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Series {
    /// Group depth of each cross-client batcher flush (how many single-query
    /// requests one fused pass served).
    BatchOccupancy = 0,
}

impl Series {
    /// All value series, in wire/report order.
    pub const ALL: [Series; 1] = [Series::BatchOccupancy];

    /// Stable snake_case name used by the exposition formats.
    pub fn name(self) -> &'static str {
        match self {
            Series::BatchOccupancy => "batch_occupancy",
        }
    }
}

/// Histogram buckets per stage: bucket `i` covers `[2^i, 2^(i+1))` ns,
/// with 0 and 1 both landing in bucket 0. 64 buckets cover all of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Bucket index for a duration: `floor(log2(max(v, 1)))`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// Per-lane scheduler slots tracked by the registry. Lanes at or above this
/// fold into the last slot (the engine clamps lanes to host cores, so in
/// practice this is never hit).
pub const MAX_LANES: usize = 32;

/// Per-shard cache slots tracked by the registry. Shards at or above this
/// fold into the last slot.
pub const MAX_SHARDS: usize = 64;

/// Per-connection wire-traffic slots tracked by the registry. Connection ids
/// at or above this fold into the last slot (long-lived deployments recycle
/// the overflow slot rather than growing without bound).
pub const MAX_CONNECTIONS: usize = 64;

/// Scratch accumulator a scan lane fills locally (plain `u64`s, no atomics)
/// and flushes into the registry once when the lane drains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Units this lane executed (own pops plus successful steals).
    pub executed: u64,
    /// Units obtained by stealing from another lane's deque.
    pub stolen: u64,
    /// CAS attempts (own-pop or steal) that lost a race and retried.
    pub failed_cas: u64,
    /// Full victim sweeps that found every deque empty.
    pub idle_polls: u64,
}

#[derive(Debug, Default)]
struct LaneSlots {
    executed: AtomicU64,
    stolen: AtomicU64,
    failed_cas: AtomicU64,
    idle_polls: AtomicU64,
}

#[derive(Debug, Default)]
struct ShardCacheSlots {
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

#[derive(Debug, Default)]
struct ConnSlots {
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

#[derive(Debug)]
struct HistogramSlots {
    count: AtomicU64,
    sum_ns: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSlots {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

#[derive(Debug)]
struct TelemetryState {
    level: AtomicU8,
    counters: [AtomicU64; Counter::ALL.len()],
    gauges: [AtomicU64; Gauge::ALL.len()],
    histograms: [HistogramSlots; Stage::ALL.len()],
    values: [HistogramSlots; Series::ALL.len()],
    lanes: [LaneSlots; MAX_LANES],
    shard_caches: [ShardCacheSlots; MAX_SHARDS],
    connections: [ConnSlots; MAX_CONNECTIONS],
}

impl Default for TelemetryState {
    fn default() -> Self {
        Self {
            level: AtomicU8::new(TelemetryLevel::Off as u8),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            histograms: std::array::from_fn(|_| HistogramSlots::default()),
            values: std::array::from_fn(|_| HistogramSlots::default()),
            lanes: std::array::from_fn(|_| LaneSlots::default()),
            shard_caches: std::array::from_fn(|_| ShardCacheSlots::default()),
            connections: std::array::from_fn(|_| ConnSlots::default()),
        }
    }
}

/// Shared handle onto one lock-free metrics registry.
///
/// Cloning is cheap (`Arc`); every method takes `&self` and is safe to call
/// from any thread. All stores are `Relaxed`: the snapshot is a statistical
/// view, not a synchronization point.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    state: Arc<TelemetryState>,
}

impl Telemetry {
    /// Fresh registry at [`TelemetryLevel::Off`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Current recording level.
    pub fn level(&self) -> TelemetryLevel {
        TelemetryLevel::from_u8(self.state.level.load(Ordering::Relaxed))
            .unwrap_or(TelemetryLevel::Off)
    }

    /// Change the recording level. Takes effect on subsequent recordings;
    /// already-recorded values are kept.
    pub fn set_level(&self, level: TelemetryLevel) {
        self.state.level.store(level as u8, Ordering::Relaxed);
    }

    #[inline]
    fn counters_on(&self) -> bool {
        self.state.level.load(Ordering::Relaxed) != TelemetryLevel::Off as u8
    }

    #[inline]
    fn spans_on(&self) -> bool {
        self.state.level.load(Ordering::Relaxed) == TelemetryLevel::Spans as u8
    }

    /// Add `n` to a counter. No-op at `Off`.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if self.counters_on() {
            self.state.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add `n` to a counter **regardless of level**. The accounting path for
    /// quantities that exist independently of the observability plane — e.g.
    /// the served-request count backing the protocol's Table 2
    /// `OperationCounters`: the registry is their single source of truth, so
    /// they must keep counting even at `Off`.
    #[inline]
    pub fn tally(&self, counter: Counter, n: u64) {
        self.state.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Set a gauge to its current value. No-op at `Off`.
    #[inline]
    pub fn set_gauge(&self, gauge: Gauge, value: u64) {
        if self.counters_on() {
            self.state.gauges[gauge as usize].store(value, Ordering::Relaxed);
        }
    }

    /// Record one duration (nanoseconds) into a stage histogram.
    /// No-op unless the level is `Spans`.
    #[inline]
    pub fn record_duration(&self, stage: Stage, ns: u64) {
        if !self.spans_on() {
            return;
        }
        let h = &self.state.histograms[stage as usize];
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum_ns.fetch_add(ns, Ordering::Relaxed);
        h.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one unit-free value into a series histogram (same log₂ buckets
    /// as durations; values, not nanoseconds). Gated like counters: no-op at
    /// `Off` — occupancy is an occurrence statistic, not a timer.
    #[inline]
    pub fn record_value(&self, series: Series, v: u64) {
        if !self.counters_on() {
            return;
        }
        let h = &self.state.values[series as usize];
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum_ns.fetch_add(v, Ordering::Relaxed);
        h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one decoded request frame arriving on a connection. No-op at
    /// `Off`. `bytes` is the framed size (length prefix included), matching
    /// the global [`Counter::WireBytesIn`] accounting.
    #[inline]
    pub fn record_conn_frame_in(&self, conn: usize, bytes: u64) {
        if !self.counters_on() {
            return;
        }
        let slot = &self.state.connections[conn.min(MAX_CONNECTIONS - 1)];
        slot.frames_in.fetch_add(1, Ordering::Relaxed);
        slot.bytes_in.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record one encoded response frame written to a connection. No-op at
    /// `Off`.
    #[inline]
    pub fn record_conn_frame_out(&self, conn: usize, bytes: u64) {
        if !self.counters_on() {
            return;
        }
        let slot = &self.state.connections[conn.min(MAX_CONNECTIONS - 1)];
        slot.frames_out.fetch_add(1, Ordering::Relaxed);
        slot.bytes_out.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Start a drop-guard timer for `stage`, or `None` unless the level is
    /// `Spans`. Bind it (`let _span = ...`) so it drops at scope end.
    #[inline]
    pub fn span(&self, stage: Stage) -> Option<Span<'_>> {
        if self.spans_on() {
            Some(Span {
                telemetry: self,
                stage,
                start: Instant::now(),
            })
        } else {
            None
        }
    }

    /// Flush a lane's locally-accumulated scheduler stats. No-op at `Off`.
    pub fn record_lane(&self, lane: usize, stats: &LaneStats) {
        if !self.counters_on() {
            return;
        }
        let slot = &self.state.lanes[lane.min(MAX_LANES - 1)];
        slot.executed.fetch_add(stats.executed, Ordering::Relaxed);
        slot.stolen.fetch_add(stats.stolen, Ordering::Relaxed);
        slot.failed_cas
            .fetch_add(stats.failed_cas, Ordering::Relaxed);
        slot.idle_polls
            .fetch_add(stats.idle_polls, Ordering::Relaxed);
    }

    /// Record one cache lookup outcome on a shard. No-op at `Off`.
    #[inline]
    pub fn record_cache_lookup(&self, shard: usize, hit: bool) {
        if !self.counters_on() {
            return;
        }
        let slot = &self.state.shard_caches[shard.min(MAX_SHARDS - 1)];
        if hit {
            slot.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            slot.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a write-generation invalidation on one shard. No-op at `Off`.
    #[inline]
    pub fn record_cache_invalidation(&self, shard: usize) {
        if self.counters_on() {
            self.state.shard_caches[shard.min(MAX_SHARDS - 1)]
                .invalidations
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record an invalidation touching every shard (global clear / restore).
    pub fn record_cache_invalidation_all(&self, shards: usize) {
        if self.counters_on() {
            for shard in 0..shards.min(MAX_SHARDS) {
                self.state.shard_caches[shard]
                    .invalidations
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Current value of one counter (reads even at `Off`).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.state.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Materialize a full snapshot. Allocates; cold path only.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name().to_string(), self.counter(c)))
            .collect();
        let gauges = Gauge::ALL
            .iter()
            .map(|&g| {
                (
                    g.name().to_string(),
                    self.state.gauges[g as usize].load(Ordering::Relaxed),
                )
            })
            .collect();
        let histograms = Stage::ALL
            .iter()
            .filter_map(|&stage| {
                let h = &self.state.histograms[stage as usize];
                let count = h.count.load(Ordering::Relaxed);
                if count == 0 {
                    return None;
                }
                let mut buckets: Vec<u64> = h
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect();
                while buckets.last() == Some(&0) {
                    buckets.pop();
                }
                Some(HistogramSnapshot {
                    stage: stage.name().to_string(),
                    count,
                    sum_ns: h.sum_ns.load(Ordering::Relaxed),
                    buckets,
                })
            })
            .collect();
        let values = Series::ALL
            .iter()
            .filter_map(|&series| {
                let h = &self.state.values[series as usize];
                let count = h.count.load(Ordering::Relaxed);
                if count == 0 {
                    return None;
                }
                let mut buckets: Vec<u64> = h
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect();
                while buckets.last() == Some(&0) {
                    buckets.pop();
                }
                Some(ValueHistogramSnapshot {
                    series: series.name().to_string(),
                    count,
                    sum: h.sum_ns.load(Ordering::Relaxed),
                    buckets,
                })
            })
            .collect();
        let lanes = self
            .state
            .lanes
            .iter()
            .enumerate()
            .filter_map(|(lane, slot)| {
                let snap = LaneSnapshot {
                    lane: lane as u32,
                    executed: slot.executed.load(Ordering::Relaxed),
                    stolen: slot.stolen.load(Ordering::Relaxed),
                    failed_steals: slot.failed_cas.load(Ordering::Relaxed),
                    idle_polls: slot.idle_polls.load(Ordering::Relaxed),
                };
                (snap.executed | snap.stolen | snap.failed_steals | snap.idle_polls != 0)
                    .then_some(snap)
            })
            .collect();
        let shard_caches = self
            .state
            .shard_caches
            .iter()
            .enumerate()
            .filter_map(|(shard, slot)| {
                let snap = ShardCacheSnapshot {
                    shard: shard as u32,
                    hits: slot.hits.load(Ordering::Relaxed),
                    misses: slot.misses.load(Ordering::Relaxed),
                    invalidations: slot.invalidations.load(Ordering::Relaxed),
                };
                (snap.hits | snap.misses | snap.invalidations != 0).then_some(snap)
            })
            .collect();
        let connections = self
            .state
            .connections
            .iter()
            .enumerate()
            .filter_map(|(conn, slot)| {
                let snap = ConnectionSnapshot {
                    connection: conn as u32,
                    frames_in: slot.frames_in.load(Ordering::Relaxed),
                    frames_out: slot.frames_out.load(Ordering::Relaxed),
                    bytes_in: slot.bytes_in.load(Ordering::Relaxed),
                    bytes_out: slot.bytes_out.load(Ordering::Relaxed),
                };
                (snap.frames_in | snap.frames_out | snap.bytes_in | snap.bytes_out != 0)
                    .then_some(snap)
            })
            .collect();
        MetricsSnapshot {
            level: self.level(),
            counters,
            gauges,
            histograms,
            values,
            lanes,
            shard_caches,
            connections,
        }
    }
}

/// Drop-guard stage timer returned by [`Telemetry::span`].
#[derive(Debug)]
pub struct Span<'a> {
    telemetry: &'a Telemetry,
    stage: Stage,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.telemetry.record_duration(self.stage, ns);
    }
}

/// Point-in-time copy of the registry, suitable for the wire.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Level at snapshot time.
    pub level: TelemetryLevel,
    /// `(name, value)` in [`Counter::ALL`] order; always complete.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` in [`Gauge::ALL`] order; always complete.
    pub gauges: Vec<(String, u64)>,
    /// Stage histograms with at least one sample.
    pub histograms: Vec<HistogramSnapshot>,
    /// Unit-free value histograms ([`Series`]) with at least one sample.
    pub values: Vec<ValueHistogramSnapshot>,
    /// Lanes with at least one nonzero field.
    pub lanes: Vec<LaneSnapshot>,
    /// Shards with at least one nonzero cache field.
    pub shard_caches: Vec<ShardCacheSnapshot>,
    /// Connections with at least one nonzero wire-traffic field.
    pub connections: Vec<ConnectionSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a named counter, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Total successful steals across all lanes.
    pub fn total_steals(&self) -> u64 {
        self.lanes.iter().map(|l| l.stolen).sum()
    }
}

/// One stage's latency histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Stage name ([`Stage::name`]).
    pub stage: String,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum_ns: u64,
    /// Bucket counts, trailing zeros trimmed; bucket `i` covers
    /// `[2^i, 2^(i+1))` ns.
    pub buckets: Vec<u64>,
}

/// One value series' log₂ histogram ([`Telemetry::record_value`]); bucket `i`
/// covers `[2^i, 2^(i+1))` of the recorded quantity (not nanoseconds).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ValueHistogramSnapshot {
    /// Series name ([`Series::name`]).
    pub series: String,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Bucket counts, trailing zeros trimmed.
    pub buckets: Vec<u64>,
}

/// One connection's cumulative wire traffic as the server's transport saw it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnectionSnapshot {
    /// Connection id (ids at or above [`MAX_CONNECTIONS`] fold into the
    /// last slot).
    pub connection: u32,
    /// Request frames decoded on this connection.
    pub frames_in: u64,
    /// Response frames written to this connection.
    pub frames_out: u64,
    /// Framed request bytes in (length prefix included).
    pub bytes_in: u64,
    /// Framed response bytes out (length prefix included).
    pub bytes_out: u64,
}

/// One scan lane's scheduler stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneSnapshot {
    /// Lane index (caller lane is 0).
    pub lane: u32,
    /// Units executed by this lane.
    pub executed: u64,
    /// Units obtained by stealing.
    pub stolen: u64,
    /// CAS races lost (own-pop or steal retries).
    pub failed_steals: u64,
    /// Full victim sweeps that found no work.
    pub idle_polls: u64,
}

/// One shard's cache stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardCacheSnapshot {
    /// Shard index.
    pub shard: u32,
    /// Lookup hits on this shard.
    pub hits: u64,
    /// Lookup misses on this shard.
    pub misses: u64,
    /// Write-generation invalidations observed on this shard.
    pub invalidations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_follow_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(7), 2);
        assert_eq!(bucket_index(8), 3);
        for k in 0..64 {
            assert_eq!(bucket_index(1u64 << k), k as usize, "2^{k}");
            if k > 0 {
                assert_eq!(bucket_index((1u64 << k) - 1), k as usize - 1);
            }
        }
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn off_level_records_nothing() {
        let tel = Telemetry::new();
        tel.add(Counter::Queries, 5);
        tel.set_gauge(Gauge::ScanLanes, 3);
        tel.record_duration(Stage::EngineQuery, 1_000);
        tel.record_lane(
            0,
            &LaneStats {
                executed: 4,
                stolen: 1,
                failed_cas: 2,
                idle_polls: 3,
            },
        );
        tel.record_cache_lookup(0, true);
        tel.record_cache_invalidation(1);
        tel.record_value(Series::BatchOccupancy, 8);
        tel.record_conn_frame_in(0, 64);
        tel.record_conn_frame_out(0, 128);
        assert!(tel.span(Stage::EngineQuery).is_none());
        let snap = tel.snapshot();
        assert_eq!(snap.level, TelemetryLevel::Off);
        assert!(snap.counters.iter().all(|(_, v)| *v == 0));
        assert!(snap.gauges.iter().all(|(_, v)| *v == 0));
        assert!(snap.histograms.is_empty());
        assert!(snap.values.is_empty());
        assert!(snap.lanes.is_empty());
        assert!(snap.shard_caches.is_empty());
        assert!(snap.connections.is_empty());
    }

    #[test]
    fn value_series_and_connection_slots_record_at_counters_level() {
        let tel = Telemetry::new();
        tel.set_level(TelemetryLevel::Counters);
        tel.record_value(Series::BatchOccupancy, 1); // bucket 0
        tel.record_value(Series::BatchOccupancy, 5); // bucket 2
        tel.record_conn_frame_in(2, 40);
        tel.record_conn_frame_in(2, 60);
        tel.record_conn_frame_out(2, 200);
        // Overflowing connection ids fold into the last slot.
        tel.record_conn_frame_out(MAX_CONNECTIONS + 7, 9);
        let snap = tel.snapshot();
        let v = &snap.values[0];
        assert_eq!(v.series, "batch_occupancy");
        assert_eq!((v.count, v.sum), (2, 6));
        assert_eq!(v.buckets, vec![1, 0, 1]);
        assert_eq!(snap.connections.len(), 2);
        let c = snap.connections[0];
        assert_eq!(c.connection, 2);
        assert_eq!((c.frames_in, c.bytes_in), (2, 100));
        assert_eq!((c.frames_out, c.bytes_out), (1, 200));
        assert_eq!(snap.connections[1].connection as usize, MAX_CONNECTIONS - 1);
        assert_eq!(snap.connections[1].bytes_out, 9);
    }

    #[test]
    fn tally_counts_even_at_off() {
        let tel = Telemetry::new();
        tel.tally(Counter::RequestsServed, 2);
        assert_eq!(tel.counter(Counter::RequestsServed), 2);
        assert_eq!(tel.snapshot().counter("requests_served"), 2);
        tel.set_level(TelemetryLevel::Spans);
        tel.tally(Counter::RequestsServed, 1);
        assert_eq!(tel.counter(Counter::RequestsServed), 3);
    }

    #[test]
    fn counters_level_records_counters_but_not_spans() {
        let tel = Telemetry::new();
        tel.set_level(TelemetryLevel::Counters);
        tel.add(Counter::Queries, 2);
        tel.record_duration(Stage::EngineQuery, 1_000);
        assert!(tel.span(Stage::EngineQuery).is_none());
        tel.record_cache_lookup(1, false);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("queries"), 2);
        assert!(snap.histograms.is_empty());
        assert_eq!(snap.shard_caches.len(), 1);
        assert_eq!(snap.shard_caches[0].shard, 1);
        assert_eq!(snap.shard_caches[0].misses, 1);
    }

    #[test]
    fn spans_level_populates_histograms_via_drop_guard() {
        let tel = Telemetry::new();
        tel.set_level(TelemetryLevel::Spans);
        {
            let _span = tel.span(Stage::UnitScan);
        }
        tel.record_duration(Stage::UnitScan, 5); // bucket 2
        let snap = tel.snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|h| h.stage == "unit_scan")
            .expect("unit_scan histogram present");
        assert_eq!(h.count, 2);
        assert!(h.sum_ns >= 5);
        assert!(h.buckets.len() >= 3);
        assert!(*h.buckets.last().unwrap() > 0, "trailing zeros trimmed");
        assert_eq!(h.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn snapshots_are_monotonic_for_counters_and_histograms() {
        let tel = Telemetry::new();
        tel.set_level(TelemetryLevel::Spans);
        let mut prev = tel.snapshot();
        for round in 0..5u64 {
            tel.add(Counter::RequestsServed, round + 1);
            tel.record_duration(Stage::ServiceCall, 100 * (round + 1));
            tel.record_lane(
                0,
                &LaneStats {
                    executed: 1,
                    ..LaneStats::default()
                },
            );
            tel.record_cache_lookup(0, round % 2 == 0);
            let cur = tel.snapshot();
            for ((name, was), (name2, is)) in prev.counters.iter().zip(cur.counters.iter()) {
                assert_eq!(name, name2);
                assert!(is >= was, "counter {name} regressed");
            }
            for h in &prev.histograms {
                let now = cur
                    .histograms
                    .iter()
                    .find(|c| c.stage == h.stage)
                    .expect("histogram persists");
                assert!(now.count >= h.count);
                assert!(now.sum_ns >= h.sum_ns);
            }
            for l in &prev.lanes {
                let now = cur.lanes.iter().find(|c| c.lane == l.lane).unwrap();
                assert!(now.executed >= l.executed);
            }
            for s in &prev.shard_caches {
                let now = cur
                    .shard_caches
                    .iter()
                    .find(|c| c.shard == s.shard)
                    .unwrap();
                assert!(now.hits >= s.hits && now.misses >= s.misses);
            }
            prev = cur;
        }
        assert_eq!(prev.counter("requests_served"), 1 + 2 + 3 + 4 + 5);
    }

    #[test]
    fn lane_and_shard_overflow_fold_into_last_slot() {
        let tel = Telemetry::new();
        tel.set_level(TelemetryLevel::Counters);
        tel.record_lane(
            MAX_LANES + 10,
            &LaneStats {
                executed: 7,
                ..LaneStats::default()
            },
        );
        tel.record_cache_lookup(MAX_SHARDS + 3, true);
        let snap = tel.snapshot();
        assert_eq!(snap.lanes.len(), 1);
        assert_eq!(snap.lanes[0].lane as usize, MAX_LANES - 1);
        assert_eq!(snap.lanes[0].executed, 7);
        assert_eq!(snap.shard_caches[0].shard as usize, MAX_SHARDS - 1);
    }

    #[test]
    fn shared_handle_aggregates_across_clones() {
        let tel = Telemetry::new();
        tel.set_level(TelemetryLevel::Counters);
        let clone = tel.clone();
        clone.add(Counter::Inserts, 3);
        tel.add(Counter::Inserts, 4);
        assert_eq!(tel.counter(Counter::Inserts), 7);
        assert_eq!(clone.level(), TelemetryLevel::Counters);
    }
}
