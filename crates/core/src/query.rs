//! Query-index generation on the user side (§4.2 and §6).
//!
//! A user holding trapdoors `I_{j1} … I_{jn}` for his search terms computes the query index
//! `Q = ∏ I_{ji}` (bitwise product) and sends the `r`-bit result to the server. With query
//! randomization enabled, a fresh random `V`-subset of the fake-keyword trapdoors is folded in
//! as well, so two queries for the same search terms have different indices (search-pattern
//! hiding, §6).

use crate::bitindex::BitIndex;
use crate::keys::Trapdoor;
use crate::params::SystemParams;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An `r`-bit query index, ready to send to the server.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryIndex {
    bits: BitIndex,
    /// Number of genuine search terms folded into the query. Kept **client-side only** for
    /// analysis; it is *not* serialized to the server (the §6 experiments show that knowing it
    /// helps the adversary link queries, which is why "this information should be kept
    /// secret").
    #[serde(skip)]
    genuine_terms: usize,
}

impl QueryIndex {
    /// The query bits that travel to the server.
    pub fn bits(&self) -> &BitIndex {
        &self.bits
    }

    /// The number of genuine search terms (client-side bookkeeping; not transmitted).
    pub fn genuine_terms(&self) -> usize {
        self.genuine_terms
    }

    /// Size on the wire in bits (Table 1: the query costs `r` bits regardless of the number
    /// of search terms).
    pub fn transmitted_bits(&self) -> usize {
        self.bits.serialized_bits()
    }

    /// Build a query index directly from raw bits (used when deserializing on the server).
    pub fn from_bits(bits: BitIndex) -> Self {
        QueryIndex {
            bits,
            genuine_terms: 0,
        }
    }
}

/// Builder for query indices.
///
/// ```
/// use mkse_core::{SystemParams, SchemeKeys, QueryBuilder};
/// use rand::SeedableRng;
///
/// let params = SystemParams::default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let keys = SchemeKeys::generate(&params, &mut rng);
/// let trapdoors = keys.trapdoors_for(&params, &["cloud", "privacy"]);
/// let pool = keys.random_pool_trapdoors(&params);
///
/// let query = QueryBuilder::new(&params)
///     .add_trapdoors(&trapdoors)
///     .with_randomization(&pool)
///     .build(&mut rng);
/// assert_eq!(query.bits().len(), 448);
/// assert_eq!(query.genuine_terms(), 2);
/// ```
pub struct QueryBuilder<'a> {
    params: &'a SystemParams,
    trapdoors: Vec<Trapdoor>,
    random_pool: Option<&'a [Trapdoor]>,
}

impl<'a> QueryBuilder<'a> {
    /// Start building a query under the given system parameters.
    pub fn new(params: &'a SystemParams) -> Self {
        QueryBuilder {
            params,
            trapdoors: Vec::new(),
            random_pool: None,
        }
    }

    /// Add one genuine search-term trapdoor.
    pub fn add_trapdoor(mut self, trapdoor: &Trapdoor) -> Self {
        self.trapdoors.push(trapdoor.clone());
        self
    }

    /// Add several genuine search-term trapdoors.
    pub fn add_trapdoors(mut self, trapdoors: &[Trapdoor]) -> Self {
        self.trapdoors.extend_from_slice(trapdoors);
        self
    }

    /// Enable query randomization with the data owner's fake-keyword trapdoor pool; `V` of
    /// them (from [`SystemParams::query_random_keywords`]) are chosen at build time.
    pub fn with_randomization(mut self, pool: &'a [Trapdoor]) -> Self {
        self.random_pool = Some(pool);
        self
    }

    /// Number of genuine trapdoors added so far.
    pub fn num_terms(&self) -> usize {
        self.trapdoors.len()
    }

    /// Build the query index. `rng` drives the random `V`-subset selection; it is unused when
    /// randomization is disabled.
    ///
    /// Panics if no genuine trapdoor was added (an empty query would match every document and
    /// is never meaningful) or if the randomization pool is smaller than `V`.
    pub fn build<R: Rng + ?Sized>(self, rng: &mut R) -> QueryIndex {
        assert!(
            !self.trapdoors.is_empty(),
            "a query needs at least one search term"
        );
        let mut bits = BitIndex::all_ones(self.params.index_bits);
        for td in &self.trapdoors {
            bits.bitwise_product_assign(td.index());
        }
        if let Some(pool) = self.random_pool {
            let v = self.params.query_random_keywords;
            assert!(
                pool.len() >= v,
                "randomization pool has {} trapdoors, V = {v} required",
                pool.len()
            );
            if v > 0 {
                for idx in rand::seq::index::sample(rng, pool.len(), v).into_iter() {
                    bits.bitwise_product_assign(pool[idx].index());
                }
            }
        }
        QueryIndex {
            bits,
            genuine_terms: self.trapdoors.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::SchemeKeys;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SystemParams, SchemeKeys, StdRng) {
        let params = SystemParams::default();
        let mut rng = StdRng::seed_from_u64(11);
        let keys = SchemeKeys::generate(&params, &mut rng);
        (params, keys, rng)
    }

    #[test]
    fn unrandomized_query_is_product_of_trapdoors() {
        let (params, keys, mut rng) = setup();
        let tds = keys.trapdoors_for(&params, &["alpha", "beta"]);
        let q = QueryBuilder::new(&params)
            .add_trapdoors(&tds)
            .build(&mut rng);
        let expected = tds[0].index().bitwise_product(tds[1].index());
        assert_eq!(q.bits(), &expected);
        assert_eq!(q.genuine_terms(), 2);
        assert_eq!(q.transmitted_bits(), 448);
    }

    #[test]
    fn add_trapdoor_individually_matches_bulk_add() {
        let (params, keys, mut rng) = setup();
        let tds = keys.trapdoors_for(&params, &["alpha", "beta"]);
        let q1 = QueryBuilder::new(&params)
            .add_trapdoor(&tds[0])
            .add_trapdoor(&tds[1])
            .build(&mut rng);
        let q2 = QueryBuilder::new(&params)
            .add_trapdoors(&tds)
            .build(&mut rng);
        assert_eq!(q1.bits(), q2.bits());
    }

    #[test]
    fn randomized_queries_for_same_terms_differ() {
        // The §6 goal: identical search terms produce different query indices.
        let (params, keys, mut rng) = setup();
        let tds = keys.trapdoors_for(&params, &["cloud"]);
        let pool = keys.random_pool_trapdoors(&params);
        let q1 = QueryBuilder::new(&params)
            .add_trapdoors(&tds)
            .with_randomization(&pool)
            .build(&mut rng);
        let q2 = QueryBuilder::new(&params)
            .add_trapdoors(&tds)
            .with_randomization(&pool)
            .build(&mut rng);
        assert_ne!(q1.bits(), q2.bits());
        assert_eq!(q1.genuine_terms(), 1);
    }

    #[test]
    fn randomized_query_has_more_zeros_than_unrandomized() {
        let (params, keys, mut rng) = setup();
        let tds = keys.trapdoors_for(&params, &["cloud"]);
        let pool = keys.random_pool_trapdoors(&params);
        let plain = QueryBuilder::new(&params)
            .add_trapdoors(&tds)
            .build(&mut rng);
        let randomized = QueryBuilder::new(&params)
            .add_trapdoors(&tds)
            .with_randomization(&pool)
            .build(&mut rng);
        assert!(randomized.bits().count_zeros() > plain.bits().count_zeros());
    }

    #[test]
    fn number_of_terms_does_not_change_size_on_wire() {
        // Table 1: the user transmits r bits "independent from γ".
        let (params, keys, mut rng) = setup();
        let q1 = QueryBuilder::new(&params)
            .add_trapdoors(&keys.trapdoors_for(&params, &["one"]))
            .build(&mut rng);
        let q5 = QueryBuilder::new(&params)
            .add_trapdoors(&keys.trapdoors_for(&params, &["a", "b", "c", "d", "e"]))
            .build(&mut rng);
        assert_eq!(q1.transmitted_bits(), q5.transmitted_bits());
    }

    #[test]
    #[should_panic(expected = "at least one search term")]
    fn empty_query_panics() {
        let (params, _, mut rng) = setup();
        let _ = QueryBuilder::new(&params).build(&mut rng);
    }

    #[test]
    #[should_panic(expected = "randomization pool")]
    fn undersized_pool_panics() {
        let (params, keys, mut rng) = setup();
        let tds = keys.trapdoors_for(&params, &["kw"]);
        let small_pool = keys.random_pool_trapdoors(&params)[..10].to_vec();
        let _ = QueryBuilder::new(&params)
            .add_trapdoors(&tds)
            .with_randomization(&small_pool)
            .build(&mut rng);
    }

    #[test]
    fn num_terms_reports_builder_state() {
        let (params, keys, _) = setup();
        let tds = keys.trapdoors_for(&params, &["x", "y", "z"]);
        let builder = QueryBuilder::new(&params).add_trapdoors(&tds);
        assert_eq!(builder.num_terms(), 3);
    }

    #[test]
    fn from_bits_round_trip() {
        let (params, keys, mut rng) = setup();
        let q = QueryBuilder::new(&params)
            .add_trapdoors(&keys.trapdoors_for(&params, &["kw"]))
            .build(&mut rng);
        let server_side = QueryIndex::from_bits(q.bits().clone());
        assert_eq!(server_side.bits(), q.bits());
        assert_eq!(server_side.genuine_terms(), 0); // not transmitted
    }
}
