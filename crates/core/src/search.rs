//! Oblivious search on the server side (§4.3) and ranked search (§5, Algorithm 1).
//!
//! The server holds one [`RankedDocumentIndex`] per document and evaluates the matching
//! predicate of Eq. (3) — a pure bitwise comparison — against the query index. When ranking is
//! enabled, Algorithm 1 walks the levels of each matching document upward; the document's rank
//! is the highest level that still matches. The server never learns anything beyond which
//! stored indices matched at which level.
//!
//! [`CloudIndex`] is the **sequential reference implementation** over a single
//! contiguous [`VecStore`]: it always scans the documents themselves with this
//! module's [`scan_ranked`] loop. The production read path is the shard-parallel
//! [`crate::engine::SearchEngine`], which sweeps each shard's block-major
//! [`crate::scanplane::ScanPlane`] instead — a layout change only; it is held
//! match-for-match, rank-for-rank and count-for-count equivalent to this reference
//! (see `tests/sharded_engine_equivalence.rs` and
//! `mkse-core/tests/scanplane_equivalence.rs`).

use crate::bitindex::BitIndex;
use crate::document_index::RankedDocumentIndex;
use crate::params::SystemParams;
use crate::query::QueryIndex;
use crate::storage::{IndexStore, StoreError, VecStore};
use serde::{Deserialize, Serialize};

/// One search hit: a document id and its relevance rank (1 ≤ rank ≤ η).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchMatch {
    /// The matching document.
    pub document_id: u64,
    /// The highest index level that matched the query (Algorithm 1); higher is more relevant.
    pub rank: u32,
}

/// Statistics about one search execution (used for the Table 2 computation-cost accounting
/// and the Figure 4b timing experiments).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Number of r-bit binary comparisons performed (σ for level 1, plus the extra level
    /// comparisons for matching documents).
    pub comparisons: u64,
    /// Number of documents that matched at level 1.
    pub matches: u64,
}

impl SearchStats {
    /// Accumulate another execution's counts (used when merging per-shard scans; the
    /// sums equal the sequential scan's counts exactly).
    pub fn merge(&mut self, other: &SearchStats) {
        self.comparisons += other.comparisons;
        self.matches += other.matches;
    }
}

/// The ranked scan of Algorithm 1 over one contiguous run of documents.
///
/// This is *the* comparison loop of the scheme: both the sequential [`CloudIndex`]
/// and each shard of the parallel engine execute it, which makes their per-document
/// behavior identical by construction. Matches are returned in scan order; callers
/// sort with [`sort_matches`].
pub fn scan_ranked(
    documents: &[RankedDocumentIndex],
    query: &QueryIndex,
) -> (Vec<SearchMatch>, SearchStats) {
    let mut stats = SearchStats::default();
    let mut matches = Vec::new();
    for doc in documents {
        stats.comparisons += 1;
        if !doc.base_level().matches_query(query.bits()) {
            continue;
        }
        stats.matches += 1;
        // Walk upward while the higher levels still match.
        let mut rank = 1u32;
        for level in doc.levels.iter().skip(1) {
            stats.comparisons += 1;
            if level.matches_query(query.bits()) {
                rank += 1;
            } else {
                break;
            }
        }
        matches.push(SearchMatch {
            document_id: doc.document_id,
            rank,
        });
    }
    (matches, stats)
}

/// Canonical result order: descending rank, ties broken by ascending document id.
///
/// Document ids are unique, so this comparator is a total order — sorting any
/// permutation of the same match set (e.g. a shard-merged one) yields one unique
/// sequence, which is what makes parallel execution deterministic.
pub fn sort_matches(matches: &mut [SearchMatch]) {
    matches.sort_by(|a, b| b.rank.cmp(&a.rank).then(a.document_id.cmp(&b.document_id)));
}

/// The sequential server-side index store — the paper's single-threaded scan, kept as
/// the reference the parallel engine is tested against.
#[derive(Clone, Debug, Default)]
pub struct CloudIndex {
    store: VecStore,
}

impl CloudIndex {
    /// Create an empty store for the given parameters.
    pub fn new(params: SystemParams) -> Self {
        CloudIndex {
            store: VecStore::new(params),
        }
    }

    /// Upload one document index.
    ///
    /// Fails if the index was built with a different number of levels or a different
    /// index size than this store's parameters (mixing parameter sets is a protocol
    /// violation), or if the document id is already stored.
    pub fn insert(&mut self, index: RankedDocumentIndex) -> Result<(), StoreError> {
        self.store.insert(index)
    }

    /// Upload many document indices, stopping at the first invalid one.
    pub fn insert_all<I: IntoIterator<Item = RankedDocumentIndex>>(
        &mut self,
        indices: I,
    ) -> Result<(), StoreError> {
        self.store.insert_all(indices)
    }

    /// Number of stored documents (σ).
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True if no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The stored index of one document (O(1) via the store's id map).
    pub fn document_index(&self, document_id: u64) -> Option<&RankedDocumentIndex> {
        self.store.document_index(document_id)
    }

    /// Plain (unranked) oblivious search: every document whose level-1 index matches the
    /// query, in storage order. This is Eq. (3) applied across the database.
    pub fn search_unranked(&self, query: &QueryIndex) -> Vec<u64> {
        self.store
            .documents()
            .iter()
            .filter(|d| d.base_level().matches_query(query.bits()))
            .map(|d| d.document_id)
            .collect()
    }

    /// Ranked search (Algorithm 1): returns matches sorted by descending rank (ties broken by
    /// document id) together with execution statistics.
    pub fn search_ranked_with_stats(&self, query: &QueryIndex) -> (Vec<SearchMatch>, SearchStats) {
        let (mut matches, stats) = scan_ranked(self.store.documents(), query);
        sort_matches(&mut matches);
        (matches, stats)
    }

    /// Ranked search without statistics.
    pub fn search(&self, query: &QueryIndex) -> Vec<SearchMatch> {
        self.search_ranked_with_stats(query).0
    }

    /// Ranked search returning only the top `tau` matches (§5: "the user can retrieve only
    /// the top τ matches where τ is chosen by the user").
    pub fn search_top(&self, query: &QueryIndex, tau: usize) -> Vec<SearchMatch> {
        let mut all = self.search(query);
        all.truncate(tau);
        all
    }

    /// The metadata (per-level indices) of the matching documents, which the server sends back
    /// so the user can assess relevance before retrieving ciphertexts (§4.3).
    ///
    /// Levels are **borrowed** from the store rather than deep-cloned per match;
    /// callers copy only what actually leaves the server.
    pub fn matching_metadata(&self, query: &QueryIndex) -> Vec<(u64, &[BitIndex])> {
        self.store
            .documents()
            .iter()
            .filter(|d| d.base_level().matches_query(query.bits()))
            .map(|d| (d.document_id, d.levels.as_slice()))
            .collect()
    }

    /// The parameters of this store.
    pub fn params(&self) -> &SystemParams {
        self.store.params()
    }

    /// The underlying single-shard store.
    pub fn store(&self) -> &VecStore {
        &self.store
    }

    /// Consume the index, returning the underlying store (e.g. to hand it to a
    /// [`crate::engine::SearchEngine`]).
    pub fn into_store(self) -> VecStore {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document_index::DocumentIndexer;
    use crate::keys::SchemeKeys;
    use crate::query::QueryBuilder;
    use mkse_textproc::document::TermFrequencies;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        params: SystemParams,
        keys: SchemeKeys,
        rng: StdRng,
    }

    fn fixture(params: SystemParams) -> Fixture {
        let mut rng = StdRng::seed_from_u64(99);
        let keys = SchemeKeys::generate(&params, &mut rng);
        Fixture { params, keys, rng }
    }

    fn query(fx: &mut Fixture, keywords: &[&str]) -> QueryIndex {
        let tds = fx.keys.trapdoors_for(&fx.params, keywords);
        QueryBuilder::new(&fx.params)
            .add_trapdoors(&tds)
            .build(&mut fx.rng)
    }

    #[test]
    fn documents_with_all_query_keywords_match() {
        let mut fx = fixture(SystemParams::default());
        let indexer = DocumentIndexer::new(&fx.params, &fx.keys);
        let mut cloud = CloudIndex::new(fx.params.clone());
        cloud
            .insert(indexer.index_keywords(0, &["cloud", "privacy", "search"]))
            .unwrap();
        cloud
            .insert(indexer.index_keywords(1, &["cloud", "weather"]))
            .unwrap();
        cloud
            .insert(indexer.index_keywords(2, &["privacy", "search", "ranking"]))
            .unwrap();
        assert_eq!(cloud.len(), 3);

        let q = query(&mut fx, &["privacy", "search"]);
        let hits = cloud.search_unranked(&q);
        assert!(hits.contains(&0));
        assert!(hits.contains(&2));
        assert!(!hits.contains(&1));
    }

    #[test]
    fn single_keyword_query_matches_all_containing_documents() {
        let mut fx = fixture(SystemParams::default());
        let indexer = DocumentIndexer::new(&fx.params, &fx.keys);
        let mut cloud = CloudIndex::new(fx.params.clone());
        for (id, kws) in [
            (0u64, vec!["alpha", "beta"]),
            (1, vec!["alpha"]),
            (2, vec!["gamma"]),
        ] {
            cloud.insert(indexer.index_keywords(id, &kws)).unwrap();
        }
        let q = query(&mut fx, &["alpha"]);
        let hits = cloud.search_unranked(&q);
        assert!(hits.contains(&0) && hits.contains(&1));
        assert!(!hits.contains(&2));
    }

    #[test]
    fn ranked_search_orders_by_term_frequency_level() {
        let mut fx = fixture(SystemParams::default()); // thresholds 1, 5, 10
        let indexer = DocumentIndexer::new(&fx.params, &fx.keys);
        let mut cloud = CloudIndex::new(fx.params.clone());
        // doc 0: keyword occurs 12 times → should reach level 3.
        cloud
            .insert(indexer.index_terms(0, &TermFrequencies::from_pairs([("topic", 12u32)])))
            .unwrap();
        // doc 1: keyword occurs 6 times → level 2.
        cloud
            .insert(indexer.index_terms(1, &TermFrequencies::from_pairs([("topic", 6u32)])))
            .unwrap();
        // doc 2: keyword occurs once → level 1.
        cloud
            .insert(indexer.index_terms(2, &TermFrequencies::from_pairs([("topic", 1u32)])))
            .unwrap();
        // doc 3: unrelated.
        cloud
            .insert(indexer.index_terms(3, &TermFrequencies::from_pairs([("other", 9u32)])))
            .unwrap();

        let q = query(&mut fx, &["topic"]);
        let (hits, stats) = cloud.search_ranked_with_stats(&q);
        let ranks: Vec<(u64, u32)> = hits.iter().map(|m| (m.document_id, m.rank)).collect();
        assert_eq!(ranks, vec![(0, 3), (1, 2), (2, 1)]);
        assert_eq!(stats.matches, 3);
        // 4 level-1 comparisons + (2 extra for doc0) + (2 extra for doc1: level2 match,
        // level3 fail) + (1 extra for doc2: level2 fail) = 9.
        assert_eq!(stats.comparisons, 9);
    }

    #[test]
    fn rank_is_determined_by_least_frequent_query_keyword() {
        // §5: "The rank of the document is identified with the least frequent keyword of the
        // query."
        let mut fx = fixture(SystemParams::default());
        let indexer = DocumentIndexer::new(&fx.params, &fx.keys);
        let mut cloud = CloudIndex::new(fx.params.clone());
        cloud
            .insert(indexer.index_terms(
                0,
                &TermFrequencies::from_pairs([("hot", 12u32), ("rare", 1u32)]),
            ))
            .unwrap();
        let q = query(&mut fx, &["hot", "rare"]);
        let hits = cloud.search(&q);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rank, 1);
        // Querying only the hot keyword reaches level 3.
        let q_hot = query(&mut fx, &["hot"]);
        assert_eq!(cloud.search(&q_hot)[0].rank, 3);
    }

    #[test]
    fn search_top_truncates_to_tau() {
        let mut fx = fixture(SystemParams::default());
        let indexer = DocumentIndexer::new(&fx.params, &fx.keys);
        let mut cloud = CloudIndex::new(fx.params.clone());
        for id in 0..10u64 {
            let tf = TermFrequencies::from_pairs([("shared", 1 + (id as u32 % 11))]);
            cloud.insert(indexer.index_terms(id, &tf)).unwrap();
        }
        let q = query(&mut fx, &["shared"]);
        let top3 = cloud.search_top(&q, 3);
        assert_eq!(top3.len(), 3);
        let all = cloud.search(&q);
        assert_eq!(&all[..3], &top3[..]);
        // Ranks are non-increasing.
        for w in all.windows(2) {
            assert!(w[0].rank >= w[1].rank);
        }
    }

    #[test]
    fn randomized_queries_return_the_same_matches() {
        // Randomization must not change the response (§6, last paragraph).
        let mut fx = fixture(SystemParams::default());
        let indexer = DocumentIndexer::new(&fx.params, &fx.keys);
        let mut cloud = CloudIndex::new(fx.params.clone());
        cloud
            .insert(indexer.index_keywords(0, &["cloud", "privacy"]))
            .unwrap();
        cloud
            .insert(indexer.index_keywords(1, &["weather"]))
            .unwrap();

        let tds = fx.keys.trapdoors_for(&fx.params, &["cloud"]);
        let pool = fx.keys.random_pool_trapdoors(&fx.params);
        let plain = QueryBuilder::new(&fx.params)
            .add_trapdoors(&tds)
            .build(&mut fx.rng);
        let randomized = QueryBuilder::new(&fx.params)
            .add_trapdoors(&tds)
            .with_randomization(&pool)
            .build(&mut fx.rng);
        assert_eq!(
            cloud.search_unranked(&plain),
            cloud.search_unranked(&randomized)
        );
    }

    #[test]
    fn metadata_is_returned_for_matches_only() {
        let mut fx = fixture(SystemParams::default());
        let indexer = DocumentIndexer::new(&fx.params, &fx.keys);
        let mut cloud = CloudIndex::new(fx.params.clone());
        cloud.insert(indexer.index_keywords(0, &["match"])).unwrap();
        cloud.insert(indexer.index_keywords(1, &["other"])).unwrap();
        let q = query(&mut fx, &["match"]);
        let metadata = cloud.matching_metadata(&q);
        assert_eq!(metadata.len(), 1);
        assert_eq!(metadata[0].0, 0);
        assert_eq!(metadata[0].1.len(), fx.params.rank_levels());
    }

    #[test]
    fn empty_store_returns_no_matches() {
        let mut fx = fixture(SystemParams::default());
        let cloud = CloudIndex::new(fx.params.clone());
        assert!(cloud.is_empty());
        let q = query(&mut fx, &["anything"]);
        assert!(cloud.search(&q).is_empty());
        assert!(cloud.search_unranked(&q).is_empty());
        assert!(cloud.document_index(0).is_none());
    }

    #[test]
    fn document_index_lookup_finds_stored_index() {
        let fx = fixture(SystemParams::default());
        let indexer = DocumentIndexer::new(&fx.params, &fx.keys);
        let mut cloud = CloudIndex::new(fx.params.clone());
        let idx = indexer.index_keywords(42, &["kw"]);
        cloud.insert(idx.clone()).unwrap();
        assert_eq!(cloud.document_index(42), Some(&idx));
        assert!(cloud.document_index(43).is_none());
    }

    #[test]
    fn inserting_index_with_wrong_level_count_is_rejected() {
        let fx = fixture(SystemParams::default());
        let other_params = SystemParams::without_ranking();
        let other_keys = SchemeKeys::generate(&other_params, &mut StdRng::seed_from_u64(5));
        let other_indexer = DocumentIndexer::new(&other_params, &other_keys);
        let mut cloud = CloudIndex::new(fx.params.clone());
        assert_eq!(
            cloud.insert(other_indexer.index_keywords(0, &["kw"])),
            Err(StoreError::LevelCountMismatch {
                expected: 3,
                found: 1
            })
        );
        assert!(cloud.is_empty(), "rejected insert must not be stored");
    }

    #[test]
    fn inserting_duplicate_document_id_is_rejected() {
        let fx = fixture(SystemParams::default());
        let indexer = DocumentIndexer::new(&fx.params, &fx.keys);
        let mut cloud = CloudIndex::new(fx.params.clone());
        cloud.insert(indexer.index_keywords(7, &["kw"])).unwrap();
        assert_eq!(
            cloud.insert(indexer.index_keywords(7, &["kw2"])),
            Err(StoreError::DuplicateDocument(7))
        );
        assert_eq!(cloud.len(), 1);
    }

    #[test]
    fn insert_all_accepts_an_iterator_and_stops_on_error() {
        let fx = fixture(SystemParams::default());
        let indexer = DocumentIndexer::new(&fx.params, &fx.keys);
        let mut cloud = CloudIndex::new(fx.params.clone());
        cloud
            .insert_all((0..5u64).map(|id| indexer.index_keywords(id, &["kw"])))
            .unwrap();
        assert_eq!(cloud.len(), 5);
        // A duplicate in the middle aborts the remaining inserts.
        let result = cloud.insert_all([
            indexer.index_keywords(10, &["kw"]),
            indexer.index_keywords(3, &["kw"]),
            indexer.index_keywords(11, &["kw"]),
        ]);
        assert_eq!(result, Err(StoreError::DuplicateDocument(3)));
        assert_eq!(cloud.len(), 6);
        assert!(cloud.document_index(11).is_none());
    }

    #[test]
    fn unranked_search_with_single_level_params() {
        let mut fx = fixture(SystemParams::without_ranking());
        let indexer = DocumentIndexer::new(&fx.params, &fx.keys);
        let mut cloud = CloudIndex::new(fx.params.clone());
        cloud.insert(indexer.index_keywords(0, &["kw"])).unwrap();
        let q = query(&mut fx, &["kw"]);
        let (hits, stats) = cloud.search_ranked_with_stats(&q);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rank, 1);
        assert_eq!(stats.comparisons, 1);
    }
}
