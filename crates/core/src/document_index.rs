//! Searchable document indices with ranking levels (§4.1 and §5).
//!
//! For a document `R` with keywords `w_1 … w_m`, the level-1 index is the bitwise product of
//! all keyword indices (Eq. 2). Level `i > 1` only includes keywords whose term frequency
//! reaches the level-`i` threshold, *cumulatively*: every keyword of level `i+1` is also in
//! level `i`. The data owner additionally folds the `U` random keywords of the randomization
//! pool into **every** level so that randomized queries (§6) still match at every level.

use crate::bitindex::BitIndex;
use crate::keys::{SchemeKeys, Trapdoor};
use crate::params::SystemParams;
use mkse_textproc::document::{Document, TermFrequencies};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The per-document searchable index uploaded to the cloud server: one `r`-bit index per
/// ranking level, plus the document id it belongs to.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankedDocumentIndex {
    /// The document this index describes.
    pub document_id: u64,
    /// `levels[i]` is the level-`(i+1)` search index; `levels[0]` indexes every keyword.
    pub levels: Vec<BitIndex>,
}

impl RankedDocumentIndex {
    /// Number of ranking levels stored (η).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The level-1 index (every keyword of the document).
    pub fn base_level(&self) -> &BitIndex {
        &self.levels[0]
    }

    /// Total serialized size in bits (η · r rounded to bytes) — the per-document storage
    /// overhead discussed at the end of §5.
    pub fn storage_bits(&self) -> usize {
        self.levels.iter().map(|l| l.serialized_bits()).sum()
    }
}

/// Builds [`RankedDocumentIndex`]es on the data-owner side.
pub struct DocumentIndexer<'a> {
    params: &'a SystemParams,
    keys: &'a SchemeKeys,
    /// Pre-computed bitwise product of all random-pool keyword indices, folded into every
    /// level of every document (identity when randomization is disabled).
    random_mask: BitIndex,
}

impl<'a> DocumentIndexer<'a> {
    /// Create an indexer for the given parameters and owner keys.
    pub fn new(params: &'a SystemParams, keys: &'a SchemeKeys) -> Self {
        let mut random_mask = BitIndex::all_ones(params.index_bits);
        for td in keys.random_pool_trapdoors(params) {
            random_mask.bitwise_product_assign(td.index());
        }
        DocumentIndexer {
            params,
            keys,
            random_mask,
        }
    }

    /// Index a document: one searchable index per ranking level, derived from the document's
    /// term frequencies.
    pub fn index_document(&self, document: &Document) -> RankedDocumentIndex {
        self.index_terms(document.id, &document.terms)
    }

    /// Index a bag of terms with explicit frequencies.
    pub fn index_terms(&self, document_id: u64, terms: &TermFrequencies) -> RankedDocumentIndex {
        let levels = self
            .params
            .level_thresholds
            .iter()
            .map(|&threshold| {
                let mut level = self.random_mask.clone();
                for (term, count) in terms.iter() {
                    if count >= threshold {
                        let td = self.keys.trapdoor_for(self.params, term);
                        level.bitwise_product_assign(td.index());
                    }
                }
                level
            })
            .collect();
        RankedDocumentIndex {
            document_id,
            levels,
        }
    }

    /// Convenience: index a plain keyword list (every keyword with term frequency 1, so only
    /// level 1 carries information).
    pub fn index_keywords(&self, document_id: u64, keywords: &[&str]) -> RankedDocumentIndex {
        let terms = TermFrequencies::from_pairs(keywords.iter().map(|k| (k.to_string(), 1u32)));
        self.index_terms(document_id, &terms)
    }

    /// Index a bag of terms while memoizing keyword indices in `cache`.
    ///
    /// The paper-faithful cost model recomputes the HMAC for every (document, keyword) pair —
    /// that is what [`DocumentIndexer::index_terms`] does and what the Figure 4(a) experiment
    /// measures. A production deployment would memoize keyword indices across documents and
    /// levels; this method provides that variant for the ablation benchmark.
    pub fn index_terms_cached(
        &self,
        document_id: u64,
        terms: &TermFrequencies,
        cache: &mut HashMap<String, Trapdoor>,
    ) -> RankedDocumentIndex {
        let levels = self
            .params
            .level_thresholds
            .iter()
            .map(|&threshold| {
                let mut level = self.random_mask.clone();
                for (term, count) in terms.iter() {
                    if count >= threshold {
                        let td = cache
                            .entry(term.to_string())
                            .or_insert_with(|| self.keys.trapdoor_for(self.params, term));
                        level.bitwise_product_assign(td.index());
                    }
                }
                level
            })
            .collect();
        RankedDocumentIndex {
            document_id,
            levels,
        }
    }

    /// Index a whole corpus sequentially, memoizing keyword indices across documents.
    pub fn index_documents(&self, documents: &[Document]) -> Vec<RankedDocumentIndex> {
        let mut cache = HashMap::new();
        documents
            .iter()
            .map(|d| self.index_terms_cached(d.id, &d.terms, &mut cache))
            .collect()
    }

    /// Index a whole corpus in parallel across `threads` worker threads (the paper notes that
    /// "index calculation problem is of highly parallelized nature", §8.1). Each worker keeps
    /// its own keyword cache; results come back in the input order.
    pub fn index_documents_parallel(
        &self,
        documents: &[Document],
        threads: usize,
    ) -> Vec<RankedDocumentIndex> {
        let threads = threads.max(1);
        if threads == 1 || documents.len() < 2 * threads {
            return self.index_documents(documents);
        }
        let chunk_size = documents.len().div_ceil(threads);
        let mut results: Vec<Vec<RankedDocumentIndex>> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = documents
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        let mut cache = HashMap::new();
                        chunk
                            .iter()
                            .map(|d| self.index_terms_cached(d.id, &d.terms, &mut cache))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("indexing worker panicked"));
            }
        })
        .expect("crossbeam scope failed");
        results.into_iter().flatten().collect()
    }

    /// The parameters this indexer was built with.
    pub fn params(&self) -> &SystemParams {
        self.params
    }

    /// The combined random-keyword mask (exposed for the analytic experiments of §6).
    pub fn random_mask(&self) -> &BitIndex {
        &self.random_mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(params: SystemParams) -> (SystemParams, SchemeKeys) {
        let keys = SchemeKeys::generate(&params, &mut StdRng::seed_from_u64(1));
        (params, keys)
    }

    #[test]
    fn index_has_one_bitindex_per_level() {
        let (params, keys) = setup(SystemParams::default());
        let indexer = DocumentIndexer::new(&params, &keys);
        let idx = indexer.index_keywords(5, &["cloud", "privacy"]);
        assert_eq!(idx.document_id, 5);
        assert_eq!(idx.num_levels(), 3);
        for level in &idx.levels {
            assert_eq!(level.len(), 448);
        }
        // Storage grows η-fold, as §5 notes.
        assert_eq!(idx.storage_bits(), 3 * 448);
    }

    #[test]
    fn base_level_is_product_of_keyword_indices_and_random_mask() {
        let (params, keys) = setup(SystemParams::default());
        let indexer = DocumentIndexer::new(&params, &keys);
        let idx = indexer.index_keywords(0, &["alpha", "beta"]);
        let expected = keys
            .trapdoor_for(&params, "alpha")
            .index()
            .bitwise_product(keys.trapdoor_for(&params, "beta").index())
            .bitwise_product(indexer.random_mask());
        assert_eq!(idx.base_level(), &expected);
    }

    #[test]
    fn higher_levels_only_contain_frequent_keywords() {
        let (params, keys) = setup(SystemParams::default()); // thresholds 1, 5, 10
        let indexer = DocumentIndexer::new(&params, &keys);
        let terms = TermFrequencies::from_pairs([("rare", 1u32), ("medium", 6), ("hot", 12)]);
        let idx = indexer.index_terms(9, &terms);

        // Level 1 includes all three keywords, level 2 two, level 3 one — so the number of
        // zero bits can only decrease (fewer keyword indices are ANDed in).
        assert!(idx.levels[0].count_zeros() >= idx.levels[1].count_zeros());
        assert!(idx.levels[1].count_zeros() >= idx.levels[2].count_zeros());

        // Level 2 equals the product of the two frequent keywords and the random mask.
        let expected_l2 = keys
            .trapdoor_for(&params, "medium")
            .index()
            .bitwise_product(keys.trapdoor_for(&params, "hot").index())
            .bitwise_product(indexer.random_mask());
        assert_eq!(idx.levels[1], expected_l2);

        // Level 3 equals the product of the hottest keyword and the random mask.
        let expected_l3 = keys
            .trapdoor_for(&params, "hot")
            .index()
            .bitwise_product(indexer.random_mask());
        assert_eq!(idx.levels[2], expected_l3);
    }

    #[test]
    fn levels_are_cumulative() {
        // Every zero of level i+1 must be a zero of level i (level i indexes a superset of
        // keywords, and AND only adds zeros).
        let (params, keys) = setup(SystemParams::with_five_levels());
        let indexer = DocumentIndexer::new(&params, &keys);
        let terms =
            TermFrequencies::from_pairs([("a", 1u32), ("b", 3), ("c", 5), ("d", 8), ("e", 12)]);
        let idx = indexer.index_terms(0, &terms);
        for i in 0..idx.num_levels() - 1 {
            // levels[i] has more (or equal) keywords folded in than levels[i+1], so
            // levels[i] AND levels[i+1] == levels[i].
            assert_eq!(
                idx.levels[i].bitwise_product(&idx.levels[i + 1]),
                idx.levels[i]
            );
        }
    }

    #[test]
    fn document_with_no_keywords_has_only_the_random_mask() {
        let (params, keys) = setup(SystemParams::default());
        let indexer = DocumentIndexer::new(&params, &keys);
        let idx = indexer.index_terms(1, &TermFrequencies::new());
        assert_eq!(idx.base_level(), indexer.random_mask());
    }

    #[test]
    fn randomization_disabled_gives_pure_keyword_product() {
        let params = SystemParams::default().without_randomization();
        let (params, keys) = setup(params);
        let indexer = DocumentIndexer::new(&params, &keys);
        assert_eq!(indexer.random_mask().count_zeros(), 0);
        let idx = indexer.index_keywords(0, &["only"]);
        assert_eq!(idx.base_level(), keys.trapdoor_for(&params, "only").index());
    }

    #[test]
    fn index_document_uses_document_terms() {
        let (params, keys) = setup(SystemParams::default());
        let indexer = DocumentIndexer::new(&params, &keys);
        let doc = Document::from_text(77, "cloud cloud cloud privacy");
        let via_doc = indexer.index_document(&doc);
        let via_terms = indexer.index_terms(77, &doc.terms);
        assert_eq!(via_doc, via_terms);
        assert_eq!(via_doc.document_id, 77);
    }

    #[test]
    fn params_accessor_returns_configuration() {
        let (params, keys) = setup(SystemParams::default());
        let indexer = DocumentIndexer::new(&params, &keys);
        assert_eq!(indexer.params().index_bits, 448);
    }

    #[test]
    fn cached_indexing_matches_uncached() {
        let (params, keys) = setup(SystemParams::default());
        let indexer = DocumentIndexer::new(&params, &keys);
        let terms = TermFrequencies::from_pairs([("alpha", 2u32), ("beta", 7), ("gamma", 11)]);
        let mut cache = std::collections::HashMap::new();
        let cached = indexer.index_terms_cached(3, &terms, &mut cache);
        let plain = indexer.index_terms(3, &terms);
        assert_eq!(cached, plain);
        assert_eq!(cache.len(), 3);
        // Re-indexing with the warm cache still gives the same result.
        assert_eq!(indexer.index_terms_cached(3, &terms, &mut cache), plain);
    }

    #[test]
    fn corpus_indexing_sequential_and_parallel_agree() {
        let (params, keys) = setup(SystemParams::default());
        let indexer = DocumentIndexer::new(&params, &keys);
        let docs: Vec<Document> = (0..12u64)
            .map(|id| {
                Document::from_terms(
                    id,
                    TermFrequencies::from_pairs([
                        (format!("kw{}", id % 5), 1 + (id as u32 % 12)),
                        ("shared".to_string(), 3),
                    ]),
                )
            })
            .collect();
        let sequential = indexer.index_documents(&docs);
        let parallel = indexer.index_documents_parallel(&docs, 4);
        assert_eq!(sequential.len(), 12);
        assert_eq!(sequential, parallel);
        for (doc, idx) in docs.iter().zip(sequential.iter()) {
            assert_eq!(idx, &indexer.index_document(doc));
        }
        // Degenerate thread counts fall back to the sequential path.
        assert_eq!(indexer.index_documents_parallel(&docs, 1), sequential);
        assert_eq!(indexer.index_documents_parallel(&docs, 100), sequential);
    }
}
