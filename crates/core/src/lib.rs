//! # mkse-core — the ranked multi-keyword search scheme of Örencik & Savaş (EDBT/PAIS 2012)
//!
//! This crate implements the paper's primary contribution:
//!
//! | Paper section | Module |
//! |---|---|
//! | §4.1 index generation (HMAC → GF(2^d) → GF(2) reduction, bitwise product) | [`keyword`], [`bitindex`], [`document_index`] |
//! | §4.2 trapdoors & bins (`GetBin`, per-bin secret keys, query generation) | [`bins`], [`keys`], [`query`] |
//! | §4.3 oblivious search (Eq. 3) | [`search`] |
//! | §5 ranked search (cumulative levels, Algorithm 1) | [`document_index`], [`search`] |
//! | §6 query randomization and its analytic model (`F`, `C`, `Δ`, `EO`) | [`keys`], [`query`], [`analysis`] |
//! | §6.1 false accept rates | [`analysis`] |
//!
//! Beyond the paper, the server-side read path is layered for scale (see the root
//! crate's architecture notes): the [`storage`] module holds the [`storage::IndexStore`]
//! abstraction with single-shard ([`storage::VecStore`]) and round-robin sharded
//! ([`storage::ShardedStore`]) layouts, and the [`engine`] module executes single,
//! batched and top-k ranked queries across shards in parallel with results that are
//! bit-for-bit identical to the sequential [`search::CloudIndex`] reference scan.
//! Each shard's hot loop runs on the [`scanplane`] module's block-major
//! [`scanplane::ScanPlane`] — a bit-sliced contiguous arena the stores maintain on
//! insert, swept column-by-column with query-aware block pruning (blocks where the
//! query is all-ones can reject nothing and are skipped for the whole shard) —
//! while the AoS documents remain the authoritative copy and the reference scan.
//! The [`cache`] module adds an optional per-shard, generation-invalidated result
//! cache on top: repeated query indices (the search pattern the server observes
//! anyway, §6) skip the shard scan entirely without changing a single reply byte.
//! The [`telemetry`] module observes all of it: a lock-free registry of
//! relaxed-atomic counters, gauges and log₂-bucketed latency histograms behind a
//! runtime [`telemetry::TelemetryLevel`] knob on the engine — per-stage spans,
//! per-lane scheduler stats and per-shard cache tallies, recorded without
//! perturbing a single reply byte (the registry observes, it never
//! participates).
//!
//! Document encryption, RSA blind decryption of per-document keys and the three-party protocol
//! (data owner / user / cloud server) live in `mkse-protocol`; the baselines the paper compares
//! against (Cao et al. MRSE, Wang et al. common secure indices, plaintext relevance ranking)
//! live in `mkse-baselines`.
//!
//! ## End-to-end example
//!
//! ```
//! use mkse_core::{
//!     CloudIndex, DocumentIndexer, QueryBuilder, SchemeKeys, SystemParams,
//! };
//! use rand::SeedableRng;
//!
//! let params = SystemParams::default();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//!
//! // Data owner: generate keys, index documents, upload to the cloud.
//! let keys = SchemeKeys::generate(&params, &mut rng);
//! let indexer = DocumentIndexer::new(&params, &keys);
//! let mut cloud = CloudIndex::new(params.clone());
//! cloud.insert(indexer.index_keywords(0, &["cloud", "privacy", "search"])).unwrap();
//! cloud.insert(indexer.index_keywords(1, &["weather", "forecast"])).unwrap();
//!
//! // User: obtain trapdoors (and the randomization pool) from the data owner, build a query.
//! let trapdoors = keys.trapdoors_for(&params, &["privacy", "search"]);
//! let pool = keys.random_pool_trapdoors(&params);
//! let query = QueryBuilder::new(&params)
//!     .add_trapdoors(&trapdoors)
//!     .with_randomization(&pool)
//!     .build(&mut rng);
//!
//! // Server: oblivious ranked search.
//! let hits = cloud.search(&query);
//! assert_eq!(hits.len(), 1);
//! assert_eq!(hits[0].document_id, 0);
//! ```

pub mod analysis;
pub mod bins;
pub mod bitindex;
pub mod cache;
pub mod document_index;
pub mod engine;
pub mod keys;
pub mod keyword;
pub mod params;
pub mod persistence;
pub mod query;
pub mod rotation;
pub mod scanplane;
pub mod search;
pub mod storage;
pub mod telemetry;

pub use analysis::{
    expected_common_zeros, expected_hamming_distance, expected_random_overlap, expected_zeros,
    false_accept_rate, Histogram,
};
pub use bins::{bins_for_keywords, get_bin, BinId, BinOccupancy};
pub use bitindex::BitIndex;
pub use cache::{CacheConfig, CacheEffect, CacheStats, QueryFingerprint, RankingMode, ResultCache};
pub use document_index::{DocumentIndexer, RankedDocumentIndex};
pub use engine::{ScanScheduler, SearchEngine};
pub use keys::{trapdoor_from_bin_key, RandomKeywordPool, SchemeKeys, Trapdoor};
pub use keyword::keyword_index;
pub use params::{ParamError, SystemParams};
pub use persistence::{
    deserialize_into, deserialize_store, serialize_index_store, serialize_shard, serialize_store,
    PersistenceError,
};
pub use query::{QueryBuilder, QueryIndex};
pub use rotation::{EpochTrapdoor, RotatingKeys};
pub use scanplane::ScanPlane;
pub use search::{CloudIndex, SearchMatch, SearchStats};
pub use storage::{IndexStore, ShardedStore, StoreError, VecStore};
pub use telemetry::{
    LaneSnapshot, LaneStats, MetricsSnapshot, ShardCacheSnapshot, Telemetry, TelemetryLevel,
};

#[cfg(test)]
mod tests {
    use super::*;
    use mkse_textproc::corpus::{CorpusSpec, FrequencyModel, SyntheticCorpus};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A miniature end-to-end run over a synthetic corpus, exercising the whole pipeline the
    /// way the experiment binaries do.
    #[test]
    fn end_to_end_synthetic_corpus_search() {
        let params = SystemParams::default();
        let mut rng = StdRng::seed_from_u64(1);
        let keys = SchemeKeys::generate(&params, &mut rng);
        let indexer = DocumentIndexer::new(&params, &keys);

        let corpus = SyntheticCorpus::generate(
            &CorpusSpec {
                num_documents: 60,
                vocabulary_size: 2_000,
                keywords_per_document: 20,
                frequency_model: FrequencyModel::Uniform { lo: 1, hi: 15 },
            },
            &mut rng,
        );

        let mut cloud = CloudIndex::new(params.clone());
        cloud
            .insert_all(corpus.documents.iter().map(|d| indexer.index_document(d)))
            .unwrap();

        // Query for three keywords that co-occur in at least one document. The FAR of a
        // randomized query is dominated by how many trapdoor zero-bits survive outside
        // the U=60 random mask (§6.1): with two keywords a seed can leave only 1–2
        // discriminating bits and a FAR of 25%+; three keywords plus this fixed seed
        // give a representative low-FAR draw.
        let target = &corpus.documents[7];
        let kws: Vec<&str> = target.keywords().into_iter().take(3).collect();
        let ground_truth = corpus.documents_containing_all(&kws);
        assert!(ground_truth.contains(&target.id));

        let trapdoors = keys.trapdoors_for(&params, &kws);
        let pool = keys.random_pool_trapdoors(&params);
        let query = QueryBuilder::new(&params)
            .add_trapdoors(&trapdoors)
            .with_randomization(&pool)
            .build(&mut rng);

        let hits = cloud.search_unranked(&query);
        // Completeness: every true match is returned (the scheme has no false negatives).
        for id in &ground_truth {
            assert!(hits.contains(id), "document {id} should match");
        }
        // Soundness up to false accepts: the FAR at these parameters is small.
        let far = false_accept_rate(&hits, &ground_truth).unwrap();
        assert!(far < 0.5, "false accept rate unexpectedly high: {far}");
    }

    #[test]
    fn reexports_are_usable() {
        let params = SystemParams::default();
        assert_eq!(params.rank_levels(), 3);
        let bin = get_bin(&params, "anything");
        assert!(bin < params.num_bins as u32);
        assert!(expected_zeros(&params, 1) > 0.0);
    }
}
