//! A persistent worker pool for shard scans.
//!
//! Spawning OS threads per query costs hundreds of microseconds on some hosts —
//! comparable to an entire scan of a 10⁴-document shard — so the engine keeps a pool
//! of parked workers alive for its whole lifetime and hands them borrowed scan jobs
//! per query. Two latency tricks matter at microsecond scan times:
//!
//! * the **caller runs the last job inline**, so its dispatch sends overlap with its
//!   own share of the scanning instead of adding a wakeup round trip;
//! * the completion latch **spins briefly before parking**, because the straggler
//!   shard usually finishes within a few microseconds of the caller's own job.
//!
//! [`WorkerPool::run_scoped`] provides the scoped-thread guarantee that makes
//! borrowed jobs sound: it does not return until every submitted job has run.

use crate::telemetry::LaneStats;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{JoinHandle, Thread};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Render a panic payload for the propagated error message (shared with the
/// engine's per-shard panic-context wrapper).
pub(super) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Tracks outstanding jobs of one `run_scoped` call and whether any panicked.
struct Latch {
    remaining: AtomicUsize,
    panicked: AtomicBool,
    /// Context of the **first** panicking job (job index + its panic message), so
    /// the propagated panic names the failing lane instead of erasing it.
    failure: Mutex<Option<String>>,
    /// The dispatching thread, unparked when the count reaches zero.
    waiter: Thread,
}

impl Latch {
    fn new() -> Self {
        Latch {
            remaining: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            failure: Mutex::new(None),
            waiter: std::thread::current(),
        }
    }

    /// Register one job about to be dispatched. Counting up per send (instead of
    /// pre-loading the total) keeps [`Latch::wait`] correct even if dispatch stops
    /// partway: only jobs actually handed to a worker are waited for.
    fn add_job(&self) {
        self.remaining.fetch_add(1, Ordering::Release);
    }

    /// Record a panicking job. The first failure wins; later ones only keep the
    /// panicked flag set.
    fn record_failure(&self, job: usize, payload: &(dyn std::any::Any + Send)) {
        self.panicked.store(true, Ordering::Relaxed);
        let mut failure = self.failure.lock().unwrap();
        if failure.is_none() {
            *failure = Some(format!("job {job}: {}", panic_message(payload)));
        }
    }

    fn count_down(&self) {
        if self.remaining.fetch_sub(1, Ordering::Release) == 1 {
            self.waiter.unpark();
        }
    }

    /// Block until every job finished; returns `true` if any panicked.
    fn wait(&self) -> bool {
        // Spin first: stragglers usually finish within microseconds of the caller.
        for _ in 0..20_000 {
            if self.remaining.load(Ordering::Acquire) == 0 {
                return self.panicked.load(Ordering::Relaxed);
            }
            std::hint::spin_loop();
        }
        while self.remaining.load(Ordering::Acquire) != 0 {
            // The timeout guards against a lost unpark between the load and park.
            std::thread::park_timeout(Duration::from_millis(1));
        }
        self.panicked.load(Ordering::Relaxed)
    }
}

/// A fixed set of parked worker threads executing borrowed jobs.
pub(crate) struct WorkerPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` parked threads (at least one).
    pub(crate) fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = channel::<Job>();
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mkse-shard-{i}"))
                    .spawn(move || loop {
                        // Spin-poll briefly after each job: under sustained query
                        // traffic the next dispatch lands within microseconds, and
                        // skipping the park/unpark round trip more than pays for
                        // the bounded busy-wait.
                        let mut next = None;
                        for _ in 0..50_000 {
                            match rx.try_recv() {
                                Ok(job) => {
                                    next = Some(job);
                                    break;
                                }
                                Err(std::sync::mpsc::TryRecvError::Empty) => std::hint::spin_loop(),
                                Err(std::sync::mpsc::TryRecvError::Disconnected) => return,
                            }
                        }
                        match next.map_or_else(|| rx.recv(), Ok) {
                            Ok(job) => job(),
                            Err(_) => return,
                        }
                    })
                    .expect("spawn shard worker"),
            );
        }
        WorkerPool { senders, handles }
    }

    /// Number of worker threads.
    pub(crate) fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Run every job to completion. Jobs are distributed round-robin over the
    /// workers except the last, which runs inline on the calling thread; panics
    /// (after all jobs settled) if any job panicked, naming the first failing job
    /// and forwarding its panic message.
    ///
    /// Blocking until completion is what lets callers hand in closures borrowing
    /// local state: no job can outlive this call.
    pub(crate) fn run_scoped<'env>(&self, mut jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let own_index = jobs.len().saturating_sub(1);
        let Some(own_job) = jobs.pop() else {
            return;
        };
        let latch = Arc::new(Latch::new());
        // Uphold the transmute's safety argument on *every* exit path, including
        // unwinding (e.g. a send().expect() firing mid-dispatch): the guard waits
        // for all already-dispatched jobs before this frame — and the borrows the
        // jobs capture — can be torn down. On the normal path the explicit
        // `latch.wait()` below has already drained the count, so the guard's wait
        // returns immediately.
        struct WaitOnDrop(Arc<Latch>);
        impl Drop for WaitOnDrop {
            fn drop(&mut self) {
                self.0.wait();
            }
        }
        let _guard = WaitOnDrop(Arc::clone(&latch));

        for (i, job) in jobs.into_iter().enumerate() {
            // SAFETY: the job is erased to 'static only to travel through the
            // channel. Every borrow it captures lives at least as long as this
            // function's caller frame, and the frame cannot be exited — normally or
            // by unwinding — until `latch.wait()` (directly or via `_guard`) has
            // seen the worker finish the job, so no borrow is ever dangling.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            let latch_for_job = Arc::clone(&latch);
            let wrapped: Job = Box::new(move || {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                    latch_for_job.record_failure(i, payload.as_ref());
                }
                latch_for_job.count_down();
            });
            latch.add_job();
            self.senders[i % self.senders.len()]
                .send(wrapped)
                .expect("shard worker exited prematurely");
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(own_job)) {
            latch.record_failure(own_index, payload.as_ref());
        }
        if latch.wait() {
            let context = latch
                .failure
                .lock()
                .unwrap()
                .take()
                .unwrap_or_else(|| "<missing failure context>".to_string());
            panic!("shard scan panicked: {context}");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channels ends each worker's recv loop.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Per-lane work-stealing deques over a fixed slate of work units.
///
/// The engine's scheduler carves a query's shard scans into `total` chunk-range
/// units (indices `0..total`) and deals each lane a contiguous slice up front.
/// A lane **pops its own slice from the head** — walking its units in ascending
/// index order, the cache-friendly direction of a plane sweep — and, once its
/// slice is drained, **steals from the tail** of another lane's slice, the end
/// the victim will reach last. Each lane's state is one packed `AtomicU64`
/// (head in the high 32 bits, tail in the low 32; the slice's unclaimed units
/// are `head..tail`), so owner pops and thief steals arbitrate over a single
/// compare-exchange: every unit is claimed exactly once, with no locks and no
/// per-unit allocation. The deques only hand out *indices*; result placement
/// stays deterministic because callers write each unit's result into its own
/// pre-reserved slot.
pub(super) struct StealDeques {
    lanes: Vec<AtomicU64>,
}

impl StealDeques {
    /// Deal units `0..total` onto `lanes` contiguous slices, balanced to within
    /// one unit (the first `total % lanes` slices get the extra).
    pub(super) fn new(total: usize, lanes: usize) -> Self {
        assert!(lanes > 0, "at least one lane");
        assert!(u32::try_from(total).is_ok(), "unit index must fit in u32");
        let (base, extra) = (total / lanes, total % lanes);
        let mut lo = 0u64;
        StealDeques {
            lanes: (0..lanes as u64)
                .map(|l| {
                    let hi = lo + base as u64 + u64::from(l < extra as u64);
                    let packed = AtomicU64::new((lo << 32) | hi);
                    lo = hi;
                    packed
                })
                .collect(),
        }
    }

    /// Claim the next unit for `lane`: the head of its own slice, or — once that
    /// is drained — the tail of the first other slice with work left. `None`
    /// when every unit is claimed. (The engine always claims through
    /// [`Self::next_tracked`]; this stat-less form serves the deque tests.)
    #[cfg(test)]
    pub(super) fn next(&self, lane: usize) -> Option<usize> {
        self.next_tracked(lane, &mut LaneStats::default())
    }

    /// [`Self::next`] plus scheduler accounting into the caller's scratch
    /// [`LaneStats`]: executed units, successful steals, lost CAS races and
    /// work-less victim sweeps. The stats are plain `u64`s the lane owns — the
    /// claim path stays lock-free and allocation-free; the caller flushes the
    /// accumulated stats to the telemetry registry once, after draining.
    pub(super) fn next_tracked(&self, lane: usize, stats: &mut LaneStats) -> Option<usize> {
        if let Some(unit) = self.pop_own(lane, stats) {
            stats.executed += 1;
            return Some(unit);
        }
        match self.steal(lane, stats) {
            Some(unit) => {
                stats.executed += 1;
                stats.stolen += 1;
                Some(unit)
            }
            None => {
                stats.idle_polls += 1;
                None
            }
        }
    }

    /// Pop the head of `lane`'s own slice.
    fn pop_own(&self, lane: usize, stats: &mut LaneStats) -> Option<usize> {
        let slot = &self.lanes[lane];
        let mut cur = slot.load(Ordering::Acquire);
        loop {
            let (head, tail) = (cur >> 32, cur & 0xffff_ffff);
            if head >= tail {
                return None;
            }
            match slot.compare_exchange_weak(
                cur,
                ((head + 1) << 32) | tail,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(head as usize),
                Err(seen) => {
                    stats.failed_cas += 1;
                    cur = seen;
                }
            }
        }
    }

    /// Steal the tail unit of the first non-empty victim slice, scanning the
    /// other lanes in cyclic order from `thief + 1` (spreads concurrent thieves
    /// over distinct victims instead of contending on lane 0).
    fn steal(&self, thief: usize, stats: &mut LaneStats) -> Option<usize> {
        let lanes = self.lanes.len();
        for offset in 1..lanes {
            let victim = &self.lanes[(thief + offset) % lanes];
            let mut cur = victim.load(Ordering::Acquire);
            loop {
                let (head, tail) = (cur >> 32, cur & 0xffff_ffff);
                if head >= tail {
                    break;
                }
                match victim.compare_exchange_weak(
                    cur,
                    (head << 32) | (tail - 1),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return Some(tail as usize - 1),
                    Err(seen) => {
                        stats.failed_cas += 1;
                        cur = seen;
                    }
                }
            }
        }
        None
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_borrow_local_state_and_all_run() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        let mut results = vec![0u64; 10];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = results
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                Box::new(move || {
                    *slot = (i as u64) * 2;
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(jobs);
        assert_eq!(results, (0..10u64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_job_list_is_a_no_op() {
        let pool = WorkerPool::new(2);
        pool.run_scoped(Vec::new());
    }

    #[test]
    #[should_panic(expected = "shard scan panicked")]
    fn worker_job_panics_surface_after_all_jobs_settle() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            Box::new(|| panic!("boom")),
            Box::new(|| {}),
            Box::new(|| {}),
        ];
        pool.run_scoped(jobs);
    }

    #[test]
    #[should_panic(expected = "shard scan panicked")]
    fn inline_job_panics_surface() {
        let pool = WorkerPool::new(2);
        // The last job runs inline on the caller thread.
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> =
            vec![Box::new(|| {}), Box::new(|| panic!("inline boom"))];
        pool.run_scoped(jobs);
    }

    #[test]
    fn propagated_panic_names_the_failing_job_and_message() {
        let pool = WorkerPool::new(2);
        // Job 1 (a worker job) panics; the propagated message must identify it.
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_scoped(vec![
                Box::new(|| {}) as Box<dyn FnOnce() + Send>,
                Box::new(|| panic!("lane exploded")) as Box<dyn FnOnce() + Send>,
                Box::new(|| {}) as Box<dyn FnOnce() + Send>,
            ]);
        }));
        let message = panic_message(result.expect_err("must panic").as_ref());
        assert!(
            message.contains("shard scan panicked: job 1: lane exploded"),
            "unexpected context: {message}"
        );

        // The inline (caller-thread) job is named too.
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_scoped(vec![
                Box::new(|| {}) as Box<dyn FnOnce() + Send>,
                Box::new(|| panic!("inline boom")) as Box<dyn FnOnce() + Send>,
            ]);
        }));
        let message = panic_message(result.expect_err("must panic").as_ref());
        assert!(
            message.contains("job 1: inline boom"),
            "unexpected context: {message}"
        );
    }

    #[test]
    fn non_string_panic_payloads_get_a_placeholder() {
        let pool = WorkerPool::new(1);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_scoped(vec![
                Box::new(|| std::panic::panic_any(17u32)) as Box<dyn FnOnce() + Send>,
                Box::new(|| {}) as Box<dyn FnOnce() + Send>,
            ]);
        }));
        let message = panic_message(result.expect_err("must panic").as_ref());
        assert!(message.contains("<non-string panic payload>"), "{message}");
    }

    #[test]
    fn steal_deques_owner_pops_head_then_steals_victim_tail() {
        // Lane 0 owns 0..4, lane 1 owns 4..8. Draining everything through lane 0
        // must walk its own slice head-first, then eat lane 1's from the tail.
        let deques = StealDeques::new(8, 2);
        let drained: Vec<usize> = std::iter::from_fn(|| deques.next(0)).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 7, 6, 5, 4]);
        assert_eq!(deques.next(0), None);
        assert_eq!(deques.next(1), None, "nothing left for the owner either");
    }

    #[test]
    fn steal_deques_partition_is_contiguous_and_balanced() {
        // 10 units over 4 lanes: slices of 3, 3, 2, 2, in index order.
        let deques = StealDeques::new(10, 4);
        let mut scratch = LaneStats::default();
        let mut slices = Vec::new();
        for lane in 0..4 {
            slices.push(
                std::iter::from_fn(|| deques.pop_own(lane, &mut scratch)).collect::<Vec<_>>(),
            );
        }
        assert_eq!(
            slices,
            vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7], vec![8, 9]]
        );
        // Fewer units than lanes: the surplus lanes start empty but can steal.
        let deques = StealDeques::new(2, 4);
        assert_eq!(deques.pop_own(3, &mut scratch), None);
        assert_eq!(deques.next(3), Some(0), "lane 3 steals lane 0's only unit");
        assert_eq!(deques.next(2), Some(1));
        assert_eq!(deques.next(0), None);
        // Empty slate.
        let deques = StealDeques::new(0, 3);
        assert!((0..3).all(|lane| deques.next(lane).is_none()));
    }

    #[test]
    fn next_tracked_accounts_pops_steals_and_idle_polls() {
        // Lane 0 owns 0..2, lane 1 owns 2..4. Lane 0 drains its own slice,
        // steals lane 1's tail twice, then sweeps idle.
        let deques = StealDeques::new(4, 2);
        let mut stats = LaneStats::default();
        let drained: Vec<usize> =
            std::iter::from_fn(|| deques.next_tracked(0, &mut stats)).collect();
        assert_eq!(drained, vec![0, 1, 3, 2]);
        assert_eq!(stats.executed, 4);
        assert_eq!(stats.stolen, 2);
        assert_eq!(
            stats.idle_polls, 1,
            "the terminating None is one idle sweep"
        );
        assert_eq!(stats.failed_cas, 0, "no contention single-threaded");
        // The other lane finds nothing: pure idle polls, nothing executed.
        let mut other = LaneStats::default();
        assert_eq!(deques.next_tracked(1, &mut other), None);
        assert_eq!(
            other,
            LaneStats {
                idle_polls: 1,
                ..LaneStats::default()
            }
        );
    }

    #[test]
    fn steal_deques_concurrent_lanes_claim_every_unit_exactly_once() {
        // 4 real threads hammer one slate; every unit must be claimed exactly
        // once across lanes no matter how pops and steals interleave.
        const TOTAL: usize = 20_000;
        const LANES: usize = 4;
        let pool = WorkerPool::new(LANES - 1);
        let deques = StealDeques::new(TOTAL, LANES);
        let mut claimed: Vec<Vec<usize>> = vec![Vec::new(); LANES];
        {
            let deques = &deques;
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = claimed
                .iter_mut()
                .enumerate()
                .map(|(lane, out)| {
                    Box::new(move || {
                        while let Some(unit) = deques.next(lane) {
                            out.push(unit);
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(jobs);
        }
        let mut all: Vec<usize> = claimed.into_iter().flatten().collect();
        assert_eq!(all.len(), TOTAL, "no unit lost or double-claimed");
        all.sort_unstable();
        assert!(all.iter().enumerate().all(|(i, &u)| i == u));
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        let pool = WorkerPool::new(1);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_scoped(vec![
                Box::new(|| panic!("first")) as Box<dyn FnOnce() + Send>,
                Box::new(|| {}) as Box<dyn FnOnce() + Send>,
            ]);
        }));
        assert!(result.is_err());
        // The worker caught the panic and keeps serving jobs.
        let mut ran = false;
        pool.run_scoped(vec![
            Box::new(|| {}) as Box<dyn FnOnce() + Send + '_>,
            Box::new(|| ran = true) as Box<dyn FnOnce() + Send + '_>,
        ]);
        assert!(ran);
    }
}
