//! The hub: one process owning the index, many concurrent client connections
//! over [`LinkReader`]/[`LinkWriter`] pairs, and the **adaptive cross-client
//! batcher** that coalesces independent single-query frames into one fused
//! scan-plane pass.
//!
//! ## Topology
//!
//! One **dispatcher thread** owns the [`FusedService`] and every connection's
//! write half — a single-writer design: no lock ever guards the engine, and
//! execution order is a total order the optional journal records. Each
//! connection gets a **reader thread** that reassembles frames
//! ([`FrameBuffer`]), decodes requests, and forwards them as events; a
//! thread-per-connection **acceptor** feeds `TcpListener` connections into the
//! same machinery, and [`HubHandle::connect_memory`] attaches deterministic
//! in-process links for tests.
//!
//! ## The batcher
//!
//! Single-query [`Request::Query`] frames arriving within
//! [`HubConfig::batch_window`] are collected and executed as **one**
//! [`FusedService::call_query_group`] pass; replies are de-multiplexed back to
//! each connection by request id. Dispatch is immediate when the group reaches
//! [`HubConfig::batch_depth`], when a non-query request arrives (a barrier:
//! mutating requests must not reorder past queries), or when only one
//! connection is active (nothing to coalesce with — the query runs solo with
//! zero added latency). The engine's batch guarantees make all of this
//! **invisible**: replies, `SearchStats`, and cache counters are byte-identical
//! to the same requests issued sequentially — batching reorders only the
//! server's own memory accesses, it never changes what any client observes.
//!
//! ## Backpressure, hygiene, shutdown
//!
//! Each connection has a [`HubConfig::max_in_flight`] window: its reader stops
//! forwarding (and therefore stops reading) until replies drain. Readers
//! enforce [`HubConfig::idle_timeout`] and [`HubConfig::max_frame_bytes`] with
//! typed [`TransportError`]s — a violating or undecodable frame poisons only
//! its own connection (best-effort error frame, then close), never the server.
//! [`HubHandle::shutdown`] refuses new frames, joins every reader, then lets
//! the dispatcher drain every already-accepted frame — the shutdown event is
//! enqueued after the joins, so channel FIFO order guarantees no accepted
//! request loses its reply.

use crate::frame::FrameBuffer;
use crate::link::{memory_duplex, LinkReader, LinkWriter, MemoryLink};
use crate::FusedService;
use mkse_core::telemetry::{Counter, Gauge, Series, Stage, Telemetry};
use mkse_protocol::wire::{decode_request, encode_response};
use mkse_protocol::{ProtocolError, QueryMessage, Request, Response, TransportError};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Hub`]. The defaults suit an interactive service; tests
/// and benches shrink the windows.
#[derive(Clone, Debug)]
pub struct HubConfig {
    /// How long the first query of a pending group may wait for company
    /// before the group is flushed.
    pub batch_window: Duration,
    /// Flush immediately once this many queries are pending.
    pub batch_depth: usize,
    /// Master switch for cross-client batching; off = every request executes
    /// on arrival (still through the same dispatcher, so still serialized).
    pub batching: bool,
    /// Per-connection cap on decoded-but-unanswered requests; the reader
    /// blocks (and the peer's TCP window eventually fills) beyond it.
    pub max_in_flight: usize,
    /// Reader poll tick: how long one `recv` blocks before the reader
    /// re-checks shutdown and idle deadlines.
    pub read_timeout: Duration,
    /// Write timeout applied to accepted TCP connections.
    pub write_timeout: Duration,
    /// Close a connection that delivers no bytes for this long.
    pub idle_timeout: Duration,
    /// Refuse frames whose prefix declares more than this many payload bytes.
    pub max_frame_bytes: u64,
    /// Record every executed request (in execution order) in the
    /// [`HubReport`] journal — the equivalence suites replay it sequentially
    /// to prove the transport invisible.
    pub journal: bool,
    /// Hub-wide cap on admitted-but-unanswered requests across *all*
    /// connections (on top of the per-connection [`HubConfig::max_in_flight`]
    /// gate). A request arriving over budget is **shed**: answered
    /// immediately with [`TransportError::Overloaded`] instead of stalling
    /// the reader, never executed, never journaled.
    pub max_hub_in_flight: usize,
    /// The advisory `retry_after_ms` hint carried by shed replies.
    pub shed_retry_after: Duration,
}

impl Default for HubConfig {
    fn default() -> Self {
        HubConfig {
            batch_window: Duration::from_micros(300),
            batch_depth: 16,
            batching: true,
            max_in_flight: 32,
            read_timeout: Duration::from_millis(5),
            write_timeout: Duration::from_secs(1),
            idle_timeout: Duration::from_secs(30),
            max_frame_bytes: 64 << 20,
            journal: false,
            max_hub_in_flight: 4096,
            shed_retry_after: Duration::from_millis(2),
        }
    }
}

/// One request the hub executed, in execution order. Replaying a journal
/// sequentially through `Service::call` on an identically-initialized twin
/// reproduces every reply byte-for-byte.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEntry {
    /// Hub-assigned connection id.
    pub conn: u64,
    /// The client's request id (hub clients keep these globally unique).
    pub request_id: u64,
    /// The request as decoded from the wire.
    pub request: Request,
}

/// What a hub did over its lifetime, returned by [`HubHandle::shutdown`].
#[derive(Debug, Default)]
pub struct HubReport {
    /// Connections ever attached.
    pub connections: u64,
    /// Requests executed (every one of them answered).
    pub requests: u64,
    /// Requests shed by the hub-wide in-flight budget (answered with
    /// [`TransportError::Overloaded`], never executed, never journaled).
    pub sheds: u64,
    /// Execution-order journal (empty unless [`HubConfig::journal`]).
    pub journal: Vec<JournalEntry>,
}

/// Per-connection backpressure window: `max_in_flight` permits, acquired by
/// the reader per forwarded frame, released by the dispatcher per written
/// reply. `open_wide` (shutdown) unblocks every waiter for good.
struct Gate {
    permits: Mutex<usize>,
    freed: Condvar,
    open: AtomicBool,
}

impl Gate {
    fn new(permits: usize) -> Gate {
        Gate {
            permits: Mutex::new(permits.max(1)),
            freed: Condvar::new(),
            open: AtomicBool::new(false),
        }
    }

    fn acquire(&self) {
        if self.open.load(Ordering::Relaxed) {
            return;
        }
        let mut permits = self.permits.lock().unwrap_or_else(|e| e.into_inner());
        while *permits == 0 && !self.open.load(Ordering::Relaxed) {
            permits = self.freed.wait(permits).unwrap_or_else(|e| e.into_inner());
        }
        *permits = permits.saturating_sub(1);
    }

    fn release(&self) {
        let mut permits = self.permits.lock().unwrap_or_else(|e| e.into_inner());
        *permits += 1;
        self.freed.notify_one();
    }

    fn open_wide(&self) {
        self.open.store(true, Ordering::Relaxed);
        let _guard = self.permits.lock().unwrap_or_else(|e| e.into_inner());
        self.freed.notify_all();
    }
}

enum Event {
    Opened {
        conn: u64,
        writer: Box<dyn LinkWriter>,
        gate: Arc<Gate>,
    },
    Frame {
        conn: u64,
        request_id: u64,
        request: Request,
        at: Instant,
    },
    Fault {
        conn: u64,
        error: ProtocolError,
    },
    /// A decoded request refused by the hub-wide in-flight budget: answered
    /// with `Overloaded` (correlated by its real request id), not executed.
    /// Bypasses the per-connection gate so a saturated hub still answers.
    Shed {
        conn: u64,
        request_id: u64,
    },
    Closed {
        conn: u64,
    },
    Shutdown,
}

struct HubShared {
    config: HubConfig,
    events: Mutex<Sender<Event>>,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
    frames_accepted: AtomicU64,
    /// Admitted-but-unanswered requests across all connections (the hub-wide
    /// budget [`HubConfig::max_hub_in_flight`] is enforced against this).
    in_flight: AtomicU64,
    gates: Mutex<Vec<Arc<Gate>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    telemetry: Option<Telemetry>,
}

/// Entry point: [`Hub::spawn`] starts the dispatcher and returns the handle
/// everything else hangs off.
pub struct Hub;

impl Hub {
    /// Start a hub around `service`. The service moves onto the dispatcher
    /// thread; its telemetry registry (if any) is shared with the readers so
    /// wire traffic is recorded per connection.
    pub fn spawn<S: FusedService + Send + 'static>(service: S, config: HubConfig) -> HubHandle {
        let (tx, rx) = mpsc::channel();
        let telemetry = service.telemetry().cloned();
        let shared = Arc::new(HubShared {
            config,
            events: Mutex::new(tx),
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
            frames_accepted: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            gates: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
            telemetry,
        });
        let dispatcher_shared = shared.clone();
        let dispatcher =
            std::thread::spawn(move || dispatcher_loop(service, rx, dispatcher_shared));
        HubHandle {
            shared,
            dispatcher: Some(dispatcher),
            acceptors: Mutex::new(Vec::new()),
        }
    }
}

/// Handle to a running hub: attach connections, observe progress, shut down.
pub struct HubHandle {
    shared: Arc<HubShared>,
    dispatcher: Option<JoinHandle<HubReport>>,
    acceptors: Mutex<Vec<(SocketAddr, JoinHandle<()>)>>,
}

impl HubHandle {
    /// Bind a TCP listener (e.g. `"127.0.0.1:0"`) and accept connections into
    /// the hub until shutdown. Returns the bound address.
    pub fn bind_tcp(&self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = self.shared.clone();
        let handle = std::thread::spawn(move || acceptor_loop(shared, listener));
        self.acceptors
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((local, handle));
        Ok(local)
    }

    /// Attach a deterministic in-process connection; returns the client end.
    pub fn connect_memory(&self) -> MemoryLink {
        let (client, server) = memory_duplex();
        let (reader, writer) = server.split();
        attach_link(&self.shared, Box::new(reader), Box::new(writer));
        client
    }

    /// A clonable, `'static` dialer that can keep attaching in-process
    /// connections after this handle moved elsewhere — what a reconnecting
    /// client's connector closure captures.
    pub fn memory_dialer(&self) -> MemoryDialer {
        MemoryDialer {
            shared: self.shared.clone(),
        }
    }

    /// Attach an arbitrary reader/writer pair as one connection; returns the
    /// hub-assigned connection id.
    pub fn attach(&self, reader: Box<dyn LinkReader>, writer: Box<dyn LinkWriter>) -> u64 {
        attach_link(&self.shared, reader, writer)
    }

    /// Frames accepted past the backpressure gate so far (every one of them
    /// will be answered, even across a shutdown).
    pub fn frames_accepted(&self) -> u64 {
        self.shared.frames_accepted.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: refuse new frames, join acceptors and readers, then
    /// drain — every accepted request is executed and its reply written —
    /// and return the report.
    pub fn shutdown(mut self) -> HubReport {
        self.finish()
    }

    fn finish(&mut self) -> HubReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for gate in self
            .shared
            .gates
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            gate.open_wide();
        }
        for (addr, handle) in self
            .acceptors
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            // Wake the blocking accept; the acceptor sees the flag and exits.
            let _ = TcpStream::connect(addr);
            let _ = handle.join();
        }
        loop {
            let handles: Vec<_> = self
                .shared
                .readers
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .drain(..)
                .collect();
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
        // Every reader joined above, so all their events are already in the
        // channel: FIFO order puts this sentinel after the last frame.
        let _ = self
            .shared
            .events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .send(Event::Shutdown);
        self.dispatcher
            .take()
            .map(|d| d.join().unwrap_or_default())
            .unwrap_or_default()
    }
}

impl Drop for HubHandle {
    fn drop(&mut self) {
        if self.dispatcher.is_some() {
            let _ = self.finish();
        }
    }
}

/// Clonable in-process dial handle ([`HubHandle::memory_dialer`]): each
/// [`MemoryDialer::connect`] attaches a fresh `MemoryLink` connection, so a
/// reconnecting client can re-dial a hub it does not own. Dialing a hub that
/// already shut down yields a dead link (EOF on first read), mirroring a
/// refused TCP connect.
#[derive(Clone)]
pub struct MemoryDialer {
    shared: Arc<HubShared>,
}

impl MemoryDialer {
    /// Attach a new in-process connection; returns the client end.
    pub fn connect(&self) -> MemoryLink {
        let (client, server) = memory_duplex();
        let (reader, writer) = server.split();
        attach_link(&self.shared, Box::new(reader), Box::new(writer));
        client
    }
}

fn attach_link(
    shared: &Arc<HubShared>,
    reader: Box<dyn LinkReader>,
    writer: Box<dyn LinkWriter>,
) -> u64 {
    let conn = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    let gate = Arc::new(Gate::new(shared.config.max_in_flight));
    shared
        .gates
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(gate.clone());
    let events = shared
        .events
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let _ = events.send(Event::Opened {
        conn,
        writer,
        gate: gate.clone(),
    });
    let reader_shared = shared.clone();
    let handle = std::thread::spawn(move || reader_loop(reader_shared, conn, reader, events, gate));
    shared
        .readers
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(handle);
    conn
}

fn acceptor_loop(shared: Arc<HubShared>, listener: TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let _ = stream.set_nodelay(true);
                let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
                if let Ok(read_half) = stream.try_clone() {
                    attach_link(&shared, Box::new(read_half), Box::new(stream));
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
}

fn reader_loop(
    shared: Arc<HubShared>,
    conn: u64,
    mut reader: Box<dyn LinkReader>,
    events: Sender<Event>,
    gate: Arc<Gate>,
) {
    let _ = reader.set_recv_timeout(shared.config.read_timeout);
    let mut frames = FrameBuffer::new(shared.config.max_frame_bytes);
    let mut buf = vec![0u8; 16 * 1024];
    let mut last_activity = Instant::now();
    'conn: loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match reader.recv(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                last_activity = Instant::now();
                if let Err(e) = frames.extend(&buf[..n]) {
                    let _ = events.send(Event::Fault {
                        conn,
                        error: ProtocolError::Transport(e),
                    });
                    break;
                }
                loop {
                    match frames.pop() {
                        Ok(Some(payload)) => {
                            let decoded = {
                                let span = shared
                                    .telemetry
                                    .as_ref()
                                    .and_then(|t| t.span(Stage::FrameDecode));
                                let decoded = decode_request(&payload);
                                drop(span);
                                decoded
                            };
                            match decoded {
                                Ok((request_id, request)) => {
                                    if let Some(tel) = &shared.telemetry {
                                        let framed = payload.len() as u64 + 4;
                                        tel.add(Counter::WireFramesIn, 1);
                                        tel.add(Counter::WireBytesIn, framed);
                                        tel.record_conn_frame_in(conn as usize, framed);
                                    }
                                    // Hub-wide admission (exact: claim a slot,
                                    // roll back if that overshot the budget).
                                    // Checked before the per-connection gate so
                                    // overload is answered immediately even
                                    // when this connection's window is full.
                                    let prior = shared.in_flight.fetch_add(1, Ordering::SeqCst);
                                    if prior >= shared.config.max_hub_in_flight as u64 {
                                        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                                        let _ = events.send(Event::Shed { conn, request_id });
                                        continue;
                                    }
                                    gate.acquire();
                                    if shared.shutdown.load(Ordering::SeqCst) {
                                        // Refused: the hub is draining; give
                                        // the claimed budget slot back.
                                        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                                        break 'conn;
                                    }
                                    shared.frames_accepted.fetch_add(1, Ordering::SeqCst);
                                    let _ = events.send(Event::Frame {
                                        conn,
                                        request_id,
                                        request,
                                        at: Instant::now(),
                                    });
                                }
                                Err(e) => {
                                    let _ = events.send(Event::Fault {
                                        conn,
                                        error: ProtocolError::Codec(e),
                                    });
                                    break 'conn;
                                }
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            let _ = events.send(Event::Fault {
                                conn,
                                error: ProtocolError::Transport(e),
                            });
                            break 'conn;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if last_activity.elapsed() >= shared.config.idle_timeout {
                    let _ = events.send(Event::Fault {
                        conn,
                        error: ProtocolError::Transport(TransportError::IdleTimeout {
                            idle_ms: shared.config.idle_timeout.as_millis() as u64,
                        }),
                    });
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let _ = events.send(Event::Closed { conn });
}

struct ConnState {
    writer: Box<dyn LinkWriter>,
    gate: Arc<Gate>,
}

struct Pending {
    conn: u64,
    request_id: u64,
    message: QueryMessage,
    enqueued: Instant,
}

fn dispatcher_loop<S: FusedService>(
    mut service: S,
    events: Receiver<Event>,
    shared: Arc<HubShared>,
) -> HubReport {
    let tel = service.telemetry().cloned();
    let mut conns: BTreeMap<u64, ConnState> = BTreeMap::new();
    let mut batch: Vec<Pending> = Vec::new();
    let mut report = HubReport::default();
    let mut draining = false;
    loop {
        let event = if draining {
            match events.try_recv() {
                Ok(event) => event,
                Err(_) => break,
            }
        } else if let Some(first) = batch.first() {
            let deadline = first.enqueued + shared.config.batch_window;
            let now = Instant::now();
            if now >= deadline {
                flush_batch(
                    &mut service,
                    &mut batch,
                    Counter::BatcherFlushWindow,
                    &mut conns,
                    &tel,
                    &mut report,
                    &shared,
                );
                continue;
            }
            match events.recv_timeout(deadline - now) {
                Ok(event) => event,
                Err(RecvTimeoutError::Timeout) => {
                    flush_batch(
                        &mut service,
                        &mut batch,
                        Counter::BatcherFlushWindow,
                        &mut conns,
                        &tel,
                        &mut report,
                        &shared,
                    );
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        } else {
            match events.recv() {
                Ok(event) => event,
                Err(_) => break,
            }
        };
        match event {
            Event::Opened { conn, writer, gate } => {
                conns.insert(conn, ConnState { writer, gate });
                report.connections += 1;
                if let Some(tel) = &tel {
                    tel.add(Counter::ConnectionsOpened, 1);
                    tel.set_gauge(Gauge::OpenConnections, conns.len() as u64);
                }
            }
            Event::Frame {
                conn,
                request_id,
                request,
                at,
            } => {
                report.requests += 1;
                match request {
                    Request::Query(message) if shared.config.batching => {
                        if batch.is_empty() && conns.len() <= 1 && !draining {
                            // Solo fast path: nothing to coalesce with.
                            if let Some(tel) = &tel {
                                tel.add(Counter::BatcherSolo, 1);
                            }
                            if shared.config.journal {
                                report.journal.push(JournalEntry {
                                    conn,
                                    request_id,
                                    request: Request::Query(message.clone()),
                                });
                            }
                            let response = service.call(Request::Query(message));
                            write_reply(&mut conns, conn, request_id, &response, &tel);
                            settle(&conns, conn, &shared);
                        } else {
                            batch.push(Pending {
                                conn,
                                request_id,
                                message,
                                enqueued: at,
                            });
                            if batch.len() >= shared.config.batch_depth {
                                flush_batch(
                                    &mut service,
                                    &mut batch,
                                    Counter::BatcherFlushDepth,
                                    &mut conns,
                                    &tel,
                                    &mut report,
                                    &shared,
                                );
                            }
                        }
                    }
                    request => {
                        // Barrier: anything that is not a batchable query
                        // must not reorder past pending queries.
                        flush_batch(
                            &mut service,
                            &mut batch,
                            Counter::BatcherFlushBarrier,
                            &mut conns,
                            &tel,
                            &mut report,
                            &shared,
                        );
                        if shared.config.journal {
                            report.journal.push(JournalEntry {
                                conn,
                                request_id,
                                request: request.clone(),
                            });
                        }
                        let response = service.call(request);
                        write_reply(&mut conns, conn, request_id, &response, &tel);
                        settle(&conns, conn, &shared);
                    }
                }
            }
            Event::Shed { conn, request_id } => {
                // Shed before execution: a typed Overloaded reply carrying
                // the real request id, so the client can correlate and back
                // off. No journal entry (nothing executed), no gate or
                // budget slot to release (none was claimed).
                report.sheds += 1;
                if let Some(tel) = &tel {
                    tel.add(Counter::Sheds, 1);
                }
                let retry_after_ms = shared.config.shed_retry_after.as_millis() as u64;
                write_reply(
                    &mut conns,
                    conn,
                    request_id,
                    &Response::Error(ProtocolError::Transport(TransportError::Overloaded {
                        retry_after_ms,
                    })),
                    &tel,
                );
            }
            Event::Fault { conn, error } => {
                // Flush first so pending replies for this connection are
                // written before the error frame and the close.
                flush_batch(
                    &mut service,
                    &mut batch,
                    Counter::BatcherFlushBarrier,
                    &mut conns,
                    &tel,
                    &mut report,
                    &shared,
                );
                // Best-effort typed error (request id 0: the faulting frame
                // has no trustworthy id); the Closed event follows.
                write_reply(&mut conns, conn, 0, &Response::Error(error), &tel);
            }
            Event::Closed { conn } => {
                if draining || shared.shutdown.load(Ordering::SeqCst) {
                    // The reader was torn down by shutdown, not the peer:
                    // keep the writer so drained replies still reach it.
                } else if conns.remove(&conn).is_some() {
                    if let Some(tel) = &tel {
                        tel.add(Counter::ConnectionsClosed, 1);
                        tel.set_gauge(Gauge::OpenConnections, conns.len() as u64);
                    }
                }
            }
            Event::Shutdown => draining = true,
        }
    }
    flush_batch(
        &mut service,
        &mut batch,
        Counter::BatcherFlushShutdown,
        &mut conns,
        &tel,
        &mut report,
        &shared,
    );
    if let Some(tel) = &tel {
        tel.add(Counter::ConnectionsClosed, conns.len() as u64);
        tel.set_gauge(Gauge::OpenConnections, 0);
    }
    report
}

fn flush_batch<S: FusedService>(
    service: &mut S,
    batch: &mut Vec<Pending>,
    reason: Counter,
    conns: &mut BTreeMap<u64, ConnState>,
    tel: &Option<Telemetry>,
    report: &mut HubReport,
    shared: &HubShared,
) {
    if batch.is_empty() {
        return;
    }
    if let Some(tel) = tel {
        tel.add(reason, 1);
        tel.add(Counter::BatcherCoalesced, batch.len() as u64);
        tel.record_value(Series::BatchOccupancy, batch.len() as u64);
        for pending in batch.iter() {
            tel.record_duration(
                Stage::BatcherWait,
                pending.enqueued.elapsed().as_nanos() as u64,
            );
        }
    }
    if shared.config.journal {
        for pending in batch.iter() {
            report.journal.push(JournalEntry {
                conn: pending.conn,
                request_id: pending.request_id,
                request: Request::Query(pending.message.clone()),
            });
        }
    }
    let messages: Vec<QueryMessage> = batch.iter().map(|p| p.message.clone()).collect();
    let replies = service.call_query_group(&messages);
    for (pending, response) in batch.drain(..).zip(replies) {
        write_reply(conns, pending.conn, pending.request_id, &response, tel);
        settle(conns, pending.conn, shared);
    }
}

fn write_reply(
    conns: &mut BTreeMap<u64, ConnState>,
    conn: u64,
    request_id: u64,
    response: &Response,
    tel: &Option<Telemetry>,
) {
    let Some(state) = conns.get_mut(&conn) else {
        return;
    };
    let frame = {
        let _span = tel.as_ref().and_then(|t| t.span(Stage::FrameEncode));
        encode_response(request_id, response)
    };
    if state.writer.send_all(&frame).is_ok() {
        if let Some(tel) = tel {
            tel.add(Counter::WireFramesOut, 1);
            tel.add(Counter::WireBytesOut, frame.len() as u64);
            tel.record_conn_frame_out(conn as usize, frame.len() as u64);
        }
    }
}

/// Settle one answered request: release the connection's gate permit and give
/// its hub-wide budget slot back.
fn settle(conns: &BTreeMap<u64, ConnState>, conn: u64, shared: &HubShared) {
    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    if let Some(state) = conns.get(&conn) {
        state.gate.release();
    }
}
