//! The shard-server node: one `CloudServer` behind a hub, plus the control
//! loop that joins it to a [`Coordinator`](crate::coordinator::Coordinator).
//!
//! A [`NodeRunner`] owns two halves:
//!
//! * a **data plane** — its own [`Hub`] serving a [`CloudServer`]; the
//!   coordinator dials this hub (via [`NodeRunner::dialer`], possibly wrapped
//!   in a `FaultyLink` by a chaos harness) to ship shards and scatter queries;
//! * a **control plane** — a [`ResilientClient`] to the coordinator through
//!   which the node registers ([`NodeRunner::register`]) and beats
//!   ([`NodeRunner::heartbeat`]). The heartbeat payload is the node's own
//!   telemetry snapshot, read back over its own hub (`MetricsSnapshot` on a
//!   loopback client) — the heartbeat *is* the existing metrics envelope, no
//!   new observable channel.
//!
//! Heartbeats are driven by the caller, never by a background thread: tests
//! and benches beat explicitly, which keeps seeded failure schedules
//! reproducible.

use crate::client::ClientError;
use crate::hub::{Hub, HubConfig, HubReport, MemoryDialer};
use crate::resilient::{Connector, ResilienceStats, ResilientClient, RetryPolicy};
use mkse_core::SystemParams;
use mkse_protocol::{
    CloudServer, NodeCapabilities, NodeHeartbeat, NodeRegistration, ProtocolError, Request,
    Response, ShardAssignment,
};

/// Everything a node needs besides the coordinator's address.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// The node's stable identity (survives reconnects).
    pub node_id: u64,
    /// Local shard count of the node's own engine — how the node parallelizes
    /// *within* the global shards it serves; invisible to the fleet layout.
    pub local_shards: usize,
    /// Advertised to the coordinator at registration.
    pub capabilities: NodeCapabilities,
    /// The node's hub (batching windows, limits, journal).
    pub hub: HubConfig,
    /// Retry policy for the control-plane client to the coordinator.
    pub policy: RetryPolicy,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            node_id: 0,
            local_shards: 2,
            capabilities: NodeCapabilities::default(),
            hub: HubConfig::default(),
            policy: RetryPolicy::default(),
        }
    }
}

/// Control-plane failures: transport trouble talking to the coordinator, a
/// typed refusal from it, or a reply of the wrong shape.
#[derive(Debug)]
pub enum NodeError {
    /// The control client could not complete the exchange.
    Client(ClientError),
    /// The coordinator answered, but with a refusal.
    Refused(ProtocolError),
    /// The coordinator answered with an unexpected response variant.
    UnexpectedReply(&'static str),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Client(e) => write!(f, "control-plane transport failure: {e}"),
            NodeError::Refused(e) => write!(f, "coordinator refused: {e}"),
            NodeError::UnexpectedReply(op) => {
                write!(f, "coordinator sent an unexpected reply to {op}")
            }
        }
    }
}

impl std::error::Error for NodeError {}

impl From<ClientError> for NodeError {
    fn from(e: ClientError) -> Self {
        NodeError::Client(e)
    }
}

/// A running shard-server node.
pub struct NodeRunner {
    node_id: u64,
    capabilities: NodeCapabilities,
    hub: crate::hub::HubHandle,
    /// Loopback into the node's own hub: reads the telemetry snapshot that
    /// heartbeats carry.
    loopback: ResilientClient,
    /// Control-plane client to the coordinator.
    control: ResilientClient,
    assignment: Option<ShardAssignment>,
}

impl NodeRunner {
    /// Spawn the node's hub around a fresh `CloudServer` and wire the control
    /// plane to the coordinator through `coordinator` (typically the
    /// coordinator hub's [`MemoryDialer`], possibly fault-wrapped).
    pub fn spawn(params: SystemParams, config: NodeConfig, coordinator: Connector) -> NodeRunner {
        let server = CloudServer::with_shards(params, config.local_shards.max(1));
        let hub = Hub::spawn(server, config.hub);
        let dialer = hub.memory_dialer();
        let loopback: Connector = Box::new(move |_ordinal| {
            let (reader, writer) = dialer.connect().split();
            Ok((Box::new(reader) as _, Box::new(writer) as _))
        });
        let loopback = ResilientClient::new(loopback, RetryPolicy::default())
            .with_first_request_id(config.node_id.wrapping_mul(1_000_000_000) + 500_000_001);
        let control = ResilientClient::new(coordinator, config.policy)
            .with_first_request_id(config.node_id.wrapping_mul(1_000_000_000) + 750_000_001);
        NodeRunner {
            node_id: config.node_id,
            capabilities: config.capabilities,
            hub,
            loopback,
            control,
            assignment: None,
        }
    }

    /// The node's identity.
    pub fn node_id(&self) -> u64 {
        self.node_id
    }

    /// A dialer into the node's data-plane hub — hand this to
    /// `Coordinator::add_node` (wrap it in a `FaultyLink` to torment the
    /// fleet's view of this node without touching the node itself).
    pub fn dialer(&self) -> MemoryDialer {
        self.hub.memory_dialer()
    }

    /// The shard assignment from the last successful register/heartbeat.
    pub fn assignment(&self) -> Option<&ShardAssignment> {
        self.assignment.as_ref()
    }

    /// Control-plane resilience counters (conservation law holds here too).
    pub fn control_stats(&self) -> ResilienceStats {
        self.control.stats()
    }

    fn expect_assignment(
        &mut self,
        reply: Result<Response, ClientError>,
        op: &'static str,
    ) -> Result<ShardAssignment, NodeError> {
        match reply? {
            Response::ShardAssignment(assignment) => {
                self.assignment = Some(assignment.clone());
                Ok(assignment)
            }
            Response::Error(e) => Err(NodeError::Refused(e)),
            _ => Err(NodeError::UnexpectedReply(op)),
        }
    }

    /// Join the fleet: advertise capabilities, receive the shard assignment.
    /// Idempotent — re-registering after being declared dead rejoins with
    /// whatever shards the coordinator grants now.
    pub fn register(&mut self) -> Result<ShardAssignment, NodeError> {
        let request = Request::RegisterNode(NodeRegistration {
            node_id: self.node_id,
            capabilities: self.capabilities,
        });
        let reply = self.control.call(&request);
        self.expect_assignment(reply, "RegisterNode")
    }

    /// One liveness beat: snapshot the node's own telemetry through its hub
    /// and send it to the coordinator; the answer is the current assignment.
    pub fn heartbeat(&mut self) -> Result<ShardAssignment, NodeError> {
        let metrics = match self.loopback.call(&Request::MetricsSnapshot)? {
            Response::MetricsReport(snapshot) => snapshot,
            Response::Error(e) => return Err(NodeError::Refused(e)),
            _ => return Err(NodeError::UnexpectedReply("MetricsSnapshot")),
        };
        let request = Request::NodeHeartbeat(NodeHeartbeat {
            node_id: self.node_id,
            metrics,
        });
        let reply = self.control.call(&request);
        self.expect_assignment(reply, "NodeHeartbeat")
    }

    /// Stop the node's hub, returning its transport report.
    pub fn shutdown(self) -> HubReport {
        self.hub.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::{Coordinator, FleetConfig};
    use crate::hub::Hub;
    use mkse_core::SystemParams;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    fn clean_connector(dialer: MemoryDialer) -> Connector {
        Box::new(move |_ordinal| {
            let (reader, writer) = dialer.connect().split();
            Ok((Box::new(reader) as _, Box::new(writer) as _))
        })
    }

    /// Connector that resolves its dialer on first use — breaks the spawn
    /// cycle (node runners need the coordinator hub's address, the
    /// coordinator needs the nodes' dialers before its hub spawns).
    fn late_connector(slot: Arc<Mutex<Option<MemoryDialer>>>) -> Connector {
        Box::new(move |_ordinal| {
            let guard = slot.lock().unwrap();
            let dialer = guard
                .as_ref()
                .ok_or_else(|| std::io::Error::other("coordinator hub not up yet"))?;
            let (reader, writer) = dialer.connect().split();
            Ok((Box::new(reader) as _, Box::new(writer) as _))
        })
    }

    /// The full control loop over the wire: nodes register with a coordinator
    /// running behind its own hub, beat, and read their assignments back —
    /// the same framed codec end to end.
    #[test]
    fn nodes_register_and_beat_through_the_coordinator_hub() {
        let params = SystemParams::default();
        let coordinator_slot: Arc<Mutex<Option<MemoryDialer>>> = Arc::new(Mutex::new(None));

        let mut runners: Vec<NodeRunner> = [(1u64, 2u32), (2, 0)]
            .into_iter()
            .map(|(node_id, shard_slots)| {
                NodeRunner::spawn(
                    params.clone(),
                    NodeConfig {
                        node_id,
                        local_shards: 2,
                        capabilities: NodeCapabilities {
                            shard_slots,
                            scan_lanes: 2,
                            cache_capacity: 0,
                        },
                        ..NodeConfig::default()
                    },
                    late_connector(coordinator_slot.clone()),
                )
            })
            .collect();

        let mut coordinator = Coordinator::new(
            params.clone(),
            FleetConfig {
                num_global_shards: 4,
                heartbeat_interval: Duration::from_millis(50),
                failure_deadline: Duration::from_secs(60),
                ..FleetConfig::default()
            },
        );
        for runner in &runners {
            coordinator.add_node(runner.node_id(), clean_connector(runner.dialer()));
        }
        let telemetry = coordinator.telemetry_handle();
        let coordinator_hub = Hub::spawn(coordinator, HubConfig::default());
        *coordinator_slot.lock().unwrap() = Some(coordinator_hub.memory_dialer());

        let a1 = runners[0].register().expect("node 1 registers");
        assert_eq!(a1.shards, vec![0, 1], "capacity-limited grant");
        let a2 = runners[1].register().expect("node 2 registers");
        assert_eq!(a2.shards, vec![2, 3], "the rest goes to node 2");
        assert_eq!(a2.failure_deadline_ms, 60_000);

        let beat = runners[0].heartbeat().expect("node 1 beats");
        assert_eq!(beat.shards, a1.shards, "assignment is stable across beats");
        assert_eq!(runners[0].assignment().unwrap().shards, vec![0, 1]);

        let snapshot = telemetry.snapshot();
        let live = snapshot
            .gauges
            .iter()
            .find(|(n, _)| n == "nodes_live")
            .map(|(_, v)| *v);
        assert_eq!(live, Some(2));

        // A node nobody wired refuses politely, over the wire.
        let mut stranger = NodeRunner::spawn(
            params,
            NodeConfig {
                node_id: 99,
                ..NodeConfig::default()
            },
            late_connector(coordinator_slot.clone()),
        );
        assert!(matches!(
            stranger.register(),
            Err(NodeError::Refused(ProtocolError::Unsupported(_)))
        ));
        assert!(matches!(
            stranger.heartbeat(),
            Err(NodeError::Refused(ProtocolError::Unsupported(_)))
        ));

        for runner in runners {
            let stats = runner.control_stats();
            assert_eq!(
                stats.attempts,
                stats.successes + stats.sheds + stats.link_faults
            );
            runner.shutdown();
        }
        stranger.shutdown();
        coordinator_hub.shutdown();
    }
}
