//! Byte-stream links the hub and clients speak over: real `TcpStream`s and an
//! in-process [`MemoryLink`] twin with the same blocking-read-with-timeout
//! semantics, so every transport test can run deterministically offline.
//!
//! A link is split into a [`LinkReader`] and a [`LinkWriter`] because the two
//! halves live on different threads: the hub's per-connection reader thread
//! owns the read half, the dispatcher thread owns the write half.

use std::collections::VecDeque;
use std::io;
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// The read half of a connection. `recv` follows `Read::read` semantics —
/// `Ok(0)` is end-of-stream — plus a poll tick: when no bytes arrive within
/// the configured receive timeout it fails with `WouldBlock`/`TimedOut`, so a
/// reader loop can interleave shutdown and idle checks with blocking reads.
pub trait LinkReader: Send + 'static {
    /// Read available bytes into `buf`; `Ok(0)` means the peer closed.
    fn recv(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Maximum time one `recv` may block before returning `WouldBlock`.
    fn set_recv_timeout(&mut self, timeout: Duration) -> io::Result<()>;
}

/// The write half of a connection.
pub trait LinkWriter: Send + 'static {
    /// Write all of `bytes` (blocking, honouring any configured write timeout).
    fn send_all(&mut self, bytes: &[u8]) -> io::Result<()>;
}

impl LinkReader for TcpStream {
    fn recv(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }

    fn set_recv_timeout(&mut self, timeout: Duration) -> io::Result<()> {
        // A zero Duration would mean "no timeout" to the socket API; clamp so
        // the poll-tick contract survives.
        self.set_read_timeout(Some(timeout.max(Duration::from_millis(1))))
    }
}

impl LinkWriter for TcpStream {
    fn send_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, bytes)
    }
}

/// One direction of an in-process duplex: a byte queue plus close flag,
/// shared by exactly one writer and one reader.
struct Pipe {
    state: Mutex<PipeState>,
    arrived: Condvar,
}

struct PipeState {
    data: VecDeque<u8>,
    closed: bool,
}

impl Pipe {
    fn new() -> Arc<Pipe> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                data: VecDeque::new(),
                closed: false,
            }),
            arrived: Condvar::new(),
        })
    }

    fn push(&self, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(io::ErrorKind::BrokenPipe.into());
        }
        state.data.extend(bytes);
        self.arrived.notify_all();
        Ok(())
    }

    /// Blocking read with timeout. Buffered bytes are always delivered before
    /// end-of-stream is reported, so replies written just before a close are
    /// never lost.
    fn pull(&self, buf: &mut [u8], timeout: Duration) -> io::Result<usize> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !state.data.is_empty() {
                let n = buf.len().min(state.data.len());
                for slot in buf[..n].iter_mut() {
                    *slot = state.data.pop_front().unwrap();
                }
                return Ok(n);
            }
            if state.closed {
                return Ok(0);
            }
            let (guard, wait) = self
                .arrived
                .wait_timeout(state, timeout)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
            if wait.timed_out() && state.data.is_empty() && !state.closed {
                return Err(io::ErrorKind::WouldBlock.into());
            }
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        self.arrived.notify_all();
    }
}

/// One end of an in-process duplex link — the `MemoryTransport` twin of a
/// `TcpStream`. Split it into its reader/writer halves to use it.
pub struct MemoryLink {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
}

/// Create a connected pair of in-process link ends (client end, server end).
pub fn memory_duplex() -> (MemoryLink, MemoryLink) {
    let a = Pipe::new();
    let b = Pipe::new();
    (
        MemoryLink {
            rx: a.clone(),
            tx: b.clone(),
        },
        MemoryLink { rx: b, tx: a },
    )
}

impl MemoryLink {
    /// Split into the reader and writer halves (each owns its direction;
    /// dropping either half closes that direction).
    pub fn split(self) -> (MemoryReader, MemoryWriter) {
        (
            MemoryReader {
                pipe: self.rx,
                timeout: Duration::from_millis(5),
            },
            MemoryWriter { pipe: self.tx },
        )
    }
}

/// Read half of a [`MemoryLink`].
pub struct MemoryReader {
    pipe: Arc<Pipe>,
    timeout: Duration,
}

/// Write half of a [`MemoryLink`].
pub struct MemoryWriter {
    pipe: Arc<Pipe>,
}

impl LinkReader for MemoryReader {
    fn recv(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.pipe.pull(buf, self.timeout)
    }

    fn set_recv_timeout(&mut self, timeout: Duration) -> io::Result<()> {
        self.timeout = timeout.max(Duration::from_micros(100));
        Ok(())
    }
}

impl LinkWriter for MemoryWriter {
    fn send_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.pipe.push(bytes)
    }
}

impl Drop for MemoryReader {
    fn drop(&mut self) {
        self.pipe.close();
    }
}

impl Drop for MemoryWriter {
    fn drop(&mut self) {
        self.pipe.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_duplex_moves_bytes_both_ways() {
        let (client, server) = memory_duplex();
        let (mut cr, mut cw) = client.split();
        let (mut sr, mut sw) = server.split();
        cw.send_all(b"ping").unwrap();
        sw.send_all(b"pong").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(sr.recv(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
        assert_eq!(cr.recv(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"pong");
    }

    #[test]
    fn buffered_bytes_survive_a_close_then_eof() {
        let (client, server) = memory_duplex();
        let (mut cr, _cw) = client.split();
        let (_sr, mut sw) = server.split();
        sw.send_all(b"last words").unwrap();
        drop(sw); // server closes its write half
        let mut buf = [0u8; 4];
        assert_eq!(cr.recv(&mut buf).unwrap(), 4);
        assert_eq!(&buf, b"last");
        let mut rest = [0u8; 16];
        assert_eq!(cr.recv(&mut rest).unwrap(), 6);
        assert_eq!(&rest[..6], b" words");
        assert_eq!(
            cr.recv(&mut rest).unwrap(),
            0,
            "EOF only after the buffer drains"
        );
    }

    #[test]
    fn idle_recv_times_out_with_would_block() {
        let (client, _server) = memory_duplex();
        let (mut cr, _cw) = client.split();
        cr.set_recv_timeout(Duration::from_millis(1)).unwrap();
        let mut buf = [0u8; 4];
        let err = cr.recv(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn writing_to_a_dropped_reader_is_broken_pipe() {
        let (client, server) = memory_duplex();
        let (sr, _sw) = server.split();
        drop(sr);
        let (_cr, mut cw) = client.split();
        let err = cw.send_all(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }
}
