//! The fleet coordinator: scatter-gather front of a shard-server fleet.
//!
//! A [`Coordinator`] is a [`Service`] like any other party in the protocol —
//! it answers the same envelope vocabulary a single
//! [`CloudServer`](mkse_protocol::CloudServer) does, so a
//! client (or a `Hub`) cannot tell a fleet from one big server. Behind that
//! facade it partitions the corpus into `num_global_shards` round-robin
//! shards, assigns shards to registered nodes, scatters queries to every live
//! node and merges the per-node replies into the canonical result order
//! (descending rank, ties by ascending document id) — byte-identical to what
//! one sequential server holding the whole corpus would answer.
//!
//! ## Membership and health
//!
//! Topology is static wiring plus dynamic membership: [`Coordinator::add_node`]
//! installs the *connector* for a node id (how to dial it), and the node
//! activates itself over the wire with [`Request::RegisterNode`], advertising
//! its [`NodeCapabilities`]. Registration and the periodic
//! [`Request::NodeHeartbeat`] are answered with the node's current
//! [`ShardAssignment`] — re-assignments propagate on the next beat. A node
//! silent for longer than [`FleetConfig::failure_deadline`] is declared dead on
//! the next request the coordinator serves (deadlines are swept at the top of
//! every [`Service::call`]; the coordinator has no background thread, which
//! keeps every test deterministic).
//!
//! ## Failover
//!
//! The coordinator keeps a full **mirror** of the index (the same
//! [`ShardedStore`] type the engine uses, same insert path, so validation
//! errors, partial-upload semantics and snapshot bytes all match a single-node
//! twin exactly) plus, per shard, a checkpoint: the serialized shard bytes as
//! of the last ship ([`serialize_shard`] — layout-independent) and the number
//! of documents they cover. When a node dies — health deadline, exhausted
//! retries, or a refused reply — its shards are re-homed onto the survivor
//! with the fewest shards (ties to the lowest node id, capacity respected):
//! the survivor receives the checkpoint via [`Request::RestoreIndex`] and the
//! journal of inserts since the checkpoint via [`Request::Upload`], then the
//! checkpoint advances. Writes forward with `retry_non_idempotent` **off**, so
//! an ambiguous write marks the node dead instead of risking a duplicate; the
//! subsequent re-ship replays from the mirror, giving fleet-wide at-most-once
//! effects.
//!
//! ## What the coordinator serves locally
//!
//! Document bodies never leave the coordinator: nodes hold index shards only,
//! so [`Request::Documents`] is answered from the coordinator's own store
//! (§4.3's metadata/bodies split maps onto the fleet naturally).
//! [`Request::SnapshotIndex`] serializes the mirror — byte-identical to the
//! twin's snapshot. Cache administration is refused: the fleet serves the
//! cache-off oracle and merged replies carry a zero [`CacheReport`].
//!
//! §6 leakage note: registration, heartbeat and shard-shipping traffic is
//! server-side topology maintenance — none of it depends on queries, so the
//! fleet adds no observable channel beyond what a single server leaks.

use crate::resilient::{Connector, ResilientClient, RetryPolicy};
use crate::FusedService;
use mkse_core::storage::{IndexStore, ShardedStore};
use mkse_core::telemetry::{Counter, Gauge, Stage, Telemetry, TelemetryLevel};
use mkse_core::{
    deserialize_store, serialize_index_store, serialize_shard, PersistenceError,
    RankedDocumentIndex, SystemParams,
};
use mkse_protocol::{
    BatchSearchReply, CacheReport, DocumentReply, EncryptedDocumentTransfer, NodeCapabilities,
    NodeRegistration, OperationCounters, ProtocolError, QueryMessage, Request, Response,
    SearchReply, SearchResultEntry, ServerInfo, Service, ShardAssignment, UploadMessage,
};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Fleet-wide policy: corpus partitioning and the health contract.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Round-robin shards the corpus is partitioned into (fixed for the
    /// fleet's lifetime; nodes serve subsets of these).
    pub num_global_shards: usize,
    /// How often nodes are asked to beat (advisory, sent in every
    /// [`ShardAssignment`]; the coordinator only enforces the deadline).
    pub heartbeat_interval: Duration,
    /// Silence longer than this marks a node dead and triggers failover.
    pub failure_deadline: Duration,
    /// Retry policy for the coordinator's per-node clients. The jitter seed is
    /// decorrelated per node (`jitter_seed ^ node_id`);
    /// `retry_non_idempotent` is forced off — ambiguous writes must fail over,
    /// not duplicate.
    pub node_policy: RetryPolicy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            num_global_shards: 4,
            heartbeat_interval: Duration::from_millis(500),
            failure_deadline: Duration::from_secs(2),
            node_policy: RetryPolicy::default(),
        }
    }
}

/// One node the coordinator knows how to dial.
struct Node {
    client: ResilientClient,
    capabilities: NodeCapabilities,
    /// Global shards this node currently serves (kept sorted ascending).
    shards: Vec<u32>,
    last_beat: Instant,
    /// Has the node ever completed [`Request::RegisterNode`]?
    registered: bool,
    /// Registered, beating within the deadline, and not failed.
    alive: bool,
}

impl Node {
    /// Shard capacity from the advertised slots; 0 means unlimited.
    fn capacity(&self) -> usize {
        match self.capabilities.shard_slots {
            0 => usize::MAX,
            n => n as usize,
        }
    }

    fn has_spare_capacity(&self) -> bool {
        self.alive && self.registered && self.shards.len() < self.capacity()
    }
}

/// The fleet front: one [`Service`] hiding N shard-server nodes.
pub struct Coordinator {
    config: FleetConfig,
    /// Full authoritative copy of the index, same store type and insert path
    /// as the single-node twin — identical errors, identical snapshot bytes.
    mirror: ShardedStore,
    /// Encrypted document bodies, served locally (nodes hold indices only).
    documents: BTreeMap<u64, EncryptedDocumentTransfer>,
    nodes: BTreeMap<u64, Node>,
    /// `owner_of[s]` = the live node serving global shard `s`.
    owner_of: Vec<Option<u64>>,
    /// Per-shard failover checkpoint: serialized shard as of the last ship,
    /// and how many of the shard's documents it covers. Inserts past
    /// `checkpoint_len` form the replay journal for the next ship.
    checkpoint_bytes: Vec<Vec<u8>>,
    checkpoint_len: Vec<usize>,
    /// Bumped on every fleet layout change; echoed in [`ShardAssignment`].
    epoch: u64,
    counters: OperationCounters,
    telemetry: Telemetry,
}

impl Coordinator {
    /// A fleet front with no nodes yet. Counters are on by default — the
    /// fleet gauges are the whole point of the telemetry satellite.
    pub fn new(params: SystemParams, config: FleetConfig) -> Coordinator {
        let shards = config.num_global_shards.max(1);
        let mirror = ShardedStore::new(params, shards);
        let telemetry = Telemetry::new();
        telemetry.set_level(TelemetryLevel::Counters);
        let checkpoint_bytes = (0..shards).map(|s| serialize_shard(&mirror, s)).collect();
        Coordinator {
            config,
            mirror,
            documents: BTreeMap::new(),
            nodes: BTreeMap::new(),
            owner_of: vec![None; shards],
            checkpoint_bytes,
            checkpoint_len: vec![0; shards],
            epoch: 0,
            counters: OperationCounters::default(),
            telemetry,
        }
    }

    /// Install the connector for a node id. The node stays invisible to
    /// queries until it registers over the wire ([`Request::RegisterNode`]).
    pub fn add_node(&mut self, node_id: u64, connector: Connector) {
        let policy = RetryPolicy {
            retry_non_idempotent: false,
            jitter_seed: self.config.node_policy.jitter_seed ^ node_id,
            ..self.config.node_policy
        };
        let client = ResilientClient::new(connector, policy)
            .with_first_request_id(node_id.wrapping_mul(1_000_000_000) + 1);
        self.nodes.insert(
            node_id,
            Node {
                client,
                capabilities: NodeCapabilities::default(),
                shards: Vec::new(),
                last_beat: Instant::now(),
                registered: false,
                alive: false,
            },
        );
    }

    /// A clone of the coordinator's telemetry registry (shared handle): read
    /// the fleet gauges and failover counters from outside the hub.
    pub fn telemetry_handle(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// The current failover epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Ids of nodes currently alive (registered and within their deadline as
    /// of the last sweep).
    pub fn live_nodes(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .filter(|(_, n)| n.alive)
            .map(|(id, _)| *id)
            .collect()
    }

    // ---- membership ------------------------------------------------------

    fn exec_register(&mut self, reg: NodeRegistration) -> Response {
        let Some(node) = self.nodes.get_mut(&reg.node_id) else {
            return Response::Error(ProtocolError::Unsupported(format!(
                "node {} has no connector installed on the coordinator",
                reg.node_id
            )));
        };
        node.capabilities = reg.capabilities;
        node.last_beat = Instant::now();
        node.registered = true;
        node.alive = true;
        self.epoch += 1;
        // Hand the newcomer every unowned shard it has capacity for,
        // ascending — deterministic for a given registration order.
        let unowned: Vec<usize> = (0..self.owner_of.len())
            .filter(|s| self.owner_of[*s].is_none())
            .collect();
        for shard in unowned {
            let node = &self.nodes[&reg.node_id];
            if !node.alive || node.shards.len() >= node.capacity() {
                break;
            }
            if self.ship_shard(reg.node_id, shard).is_ok() {
                self.owner_of[shard] = Some(reg.node_id);
                let node = self.nodes.get_mut(&reg.node_id).unwrap();
                node.shards.push(shard as u32);
                node.shards.sort_unstable();
            } else {
                self.fail_node(reg.node_id);
                self.update_gauges();
                return Response::Error(ProtocolError::Unsupported(format!(
                    "node {} failed during shard transfer",
                    reg.node_id
                )));
            }
        }
        self.update_gauges();
        Response::ShardAssignment(self.assignment_for(reg.node_id))
    }

    fn exec_heartbeat(&mut self, node_id: u64) -> Response {
        match self.nodes.get_mut(&node_id) {
            Some(node) if node.registered && node.alive => {
                node.last_beat = Instant::now();
                Response::ShardAssignment(self.assignment_for(node_id))
            }
            Some(node) if node.registered => Response::Error(ProtocolError::Unsupported(format!(
                "node {node_id} was declared dead; re-register to rejoin the fleet"
            ))),
            _ => Response::Error(ProtocolError::Unsupported(format!(
                "node {node_id} is not registered with the coordinator"
            ))),
        }
    }

    fn assignment_for(&self, node_id: u64) -> ShardAssignment {
        ShardAssignment {
            node_id,
            shards: self.nodes[&node_id].shards.clone(),
            epoch: self.epoch,
            heartbeat_interval_ms: self.config.heartbeat_interval.as_millis() as u64,
            failure_deadline_ms: self.config.failure_deadline.as_millis() as u64,
        }
    }

    fn update_gauges(&self) {
        let registered = self.nodes.values().filter(|n| n.registered).count() as u64;
        let live = self.nodes.values().filter(|n| n.alive).count() as u64;
        self.telemetry.set_gauge(Gauge::NodesRegistered, registered);
        self.telemetry.set_gauge(Gauge::NodesLive, live);
    }

    /// Declare dead every node whose last beat is older than the deadline.
    /// Called at the top of every request — liveness advances with traffic,
    /// never on a background clock, so seeded tests stay deterministic.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .nodes
            .iter()
            .filter(|(_, n)| {
                n.alive && now.duration_since(n.last_beat) > self.config.failure_deadline
            })
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            self.telemetry.add(Counter::HeartbeatsMissed, 1);
            self.fail_node(id);
        }
        if !self.nodes.is_empty() {
            self.update_gauges();
        }
    }

    // ---- failover --------------------------------------------------------

    /// Mark a node dead and re-home its shards onto survivors: fewest shards
    /// first (ties to the lowest node id), capacity respected. A survivor
    /// that fails mid-ship dies too and sheds its own shards recursively.
    /// Shards no survivor can take are left unowned; queries then answer a
    /// typed error instead of a silently incomplete result.
    fn fail_node(&mut self, node_id: u64) {
        let Some(node) = self.nodes.get_mut(&node_id) else {
            return;
        };
        if !node.alive {
            return;
        }
        node.alive = false;
        let lost: Vec<u32> = node.shards.drain(..).collect();
        let started = Instant::now();
        self.telemetry.add(Counter::Failovers, 1);
        self.epoch += 1;
        for &s in &lost {
            self.owner_of[s as usize] = None;
        }
        let mut reassigned = 0u64;
        for s in lost {
            loop {
                let target = self
                    .nodes
                    .iter()
                    .filter(|(_, n)| n.has_spare_capacity())
                    .min_by_key(|(id, n)| (n.shards.len(), **id))
                    .map(|(id, _)| *id);
                let Some(t) = target else { break };
                if self.ship_shard(t, s as usize).is_ok() {
                    self.owner_of[s as usize] = Some(t);
                    let survivor = self.nodes.get_mut(&t).unwrap();
                    survivor.shards.push(s);
                    survivor.shards.sort_unstable();
                    reassigned += 1;
                    break;
                }
                self.fail_node(t);
            }
        }
        self.telemetry.add(Counter::ShardsReassigned, reassigned);
        self.telemetry
            .record_duration(Stage::FailoverDuration, started.elapsed().as_nanos() as u64);
        self.update_gauges();
    }

    /// Ship one global shard to a node: the checkpoint snapshot via
    /// `RestoreIndex`, then the insert journal since the checkpoint via
    /// `Upload` (indices only — bodies stay on the coordinator). On success
    /// the checkpoint advances to the shard's current state. Any refusal or
    /// link fault (retries are unsafe here, writes are non-idempotent) is the
    /// caller's cue to declare the node dead.
    fn ship_shard(&mut self, node_id: u64, shard: usize) -> Result<(), ()> {
        let journal: Vec<RankedDocumentIndex> =
            self.mirror.shard_documents(shard)[self.checkpoint_len[shard]..].to_vec();
        let snapshot = self.checkpoint_bytes[shard].clone();
        let ship_snapshot = self.checkpoint_len[shard] > 0;
        let node = self.nodes.get_mut(&node_id).ok_or(())?;
        if ship_snapshot {
            match node.client.call(&Request::RestoreIndex(snapshot)) {
                Ok(Response::Restored { .. }) => {}
                _ => return Err(()),
            }
        }
        if !journal.is_empty() {
            let upload = Request::Upload(UploadMessage {
                indices: journal,
                documents: vec![],
            });
            match node.client.call(&upload) {
                Ok(Response::Uploaded { .. }) => {}
                _ => return Err(()),
            }
        }
        self.checkpoint_bytes[shard] = serialize_shard(&self.mirror, shard);
        self.checkpoint_len[shard] = self.mirror.shard_documents(shard).len();
        Ok(())
    }

    /// A non-empty shard no live node serves, if any.
    fn uncovered_shard(&self) -> Option<usize> {
        (0..self.owner_of.len())
            .find(|&s| self.owner_of[s].is_none() && !self.mirror.shard_documents(s).is_empty())
    }

    /// Live nodes that hold at least one shard (nodes without shards hold no
    /// documents and need not be scattered to).
    fn scatter_targets(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .filter(|(_, n)| n.alive && !n.shards.is_empty())
            .map(|(id, _)| *id)
            .collect()
    }

    fn no_coverage_error(&self, shard: usize) -> Response {
        Response::Error(ProtocolError::Unsupported(format!(
            "fleet cannot cover the corpus: no live node serves global shard {shard}"
        )))
    }

    // ---- the read path ---------------------------------------------------

    /// Merge per-node match lists into the canonical order: descending rank,
    /// ties by ascending document id — exactly [`mkse_core::search::sort_matches`]'s
    /// comparator, so the merged reply is byte-identical to the twin's.
    fn merge(mut collected: Vec<Vec<SearchResultEntry>>, top: Option<usize>) -> SearchReply {
        let mut matches: Vec<SearchResultEntry> = collected.drain(..).flatten().collect();
        matches.sort_by(|a, b| b.rank.cmp(&a.rank).then(a.document_id.cmp(&b.document_id)));
        if let Some(limit) = top {
            matches.truncate(limit);
        }
        SearchReply {
            matches,
            cache: CacheReport::default(),
        }
    }

    /// Scatter a request to every shard-holding live node, collecting one
    /// reply per node via `extract`. Any node error fails that node over and
    /// re-scatters — each round kills at least one node, so the loop
    /// terminates. Queries are idempotent, so resubmission is always safe.
    #[allow(clippy::result_large_err)] // the Err is the Response sent to the caller
    fn scatter<T>(
        &mut self,
        request: &Request,
        extract: impl Fn(Response) -> Option<T>,
    ) -> Result<Vec<T>, Response> {
        loop {
            if let Some(shard) = self.uncovered_shard() {
                return Err(self.no_coverage_error(shard));
            }
            let targets = self.scatter_targets();
            let mut collected = Vec::with_capacity(targets.len());
            let mut failed = None;
            for id in targets {
                let node = self.nodes.get_mut(&id).unwrap();
                let extracted = match node.client.call(request) {
                    Ok(reply) => extract(reply),
                    Err(_) => None,
                };
                match extracted {
                    Some(part) => collected.push(part),
                    None => {
                        failed = Some(id);
                        break;
                    }
                }
            }
            match failed {
                Some(id) => self.fail_node(id),
                None => return Ok(collected),
            }
        }
    }

    fn exec_query(&mut self, message: &QueryMessage) -> Response {
        if self.mirror.is_empty() {
            return Response::Search(SearchReply {
                matches: vec![],
                cache: CacheReport::default(),
            });
        }
        let request = Request::Query(message.clone());
        match self.scatter(&request, |reply| match reply {
            Response::Search(r) => Some(r.matches),
            _ => None,
        }) {
            Ok(collected) => Response::Search(Self::merge(collected, message.top)),
            Err(error) => error,
        }
    }

    fn exec_batch_query(&mut self, message: &mkse_protocol::BatchQueryMessage) -> Response {
        let queries = message.queries.len();
        if self.mirror.is_empty() {
            let empty = SearchReply {
                matches: vec![],
                cache: CacheReport::default(),
            };
            return Response::BatchSearch(BatchSearchReply {
                replies: vec![empty; queries],
            });
        }
        let request = Request::BatchQuery(message.clone());
        let per_node = self.scatter(&request, |reply| match reply {
            Response::BatchSearch(b) if b.replies.len() == queries => Some(b.replies),
            _ => None,
        });
        match per_node {
            Ok(collected) => {
                let replies = (0..queries)
                    .map(|i| {
                        let parts: Vec<Vec<SearchResultEntry>> = collected
                            .iter()
                            .map(|node_replies| node_replies[i].matches.clone())
                            .collect();
                        Self::merge(parts, message.top)
                    })
                    .collect();
                Response::BatchSearch(BatchSearchReply { replies })
            }
            Err(error) => error,
        }
    }

    fn exec_server_info(&mut self) -> Response {
        let params = self.mirror.params();
        let (index_bits, rank_levels) = (params.index_bits as u64, params.rank_levels() as u64);
        let shards = self.owner_of.len() as u64;
        if self.mirror.is_empty() {
            return Response::Info(ServerInfo {
                shards,
                documents: 0,
                index_bits,
                rank_levels,
                cache_enabled: false,
            });
        }
        // Sum the *nodes'* document counts — this pins the corpus: after any
        // failover the sum must still equal the mirror, or documents were
        // lost in transit.
        match self.scatter(&Request::ServerInfo, |reply| match reply {
            Response::Info(info) => Some(info.documents),
            _ => None,
        }) {
            Ok(counts) => Response::Info(ServerInfo {
                shards,
                documents: counts.iter().sum(),
                index_bits,
                rank_levels,
                cache_enabled: false,
            }),
            Err(error) => error,
        }
    }

    // ---- the write path --------------------------------------------------

    /// Forward freshly accepted indices to their owning nodes, grouped per
    /// node. A refused or ambiguous forward fails the node over — the re-ship
    /// replays the same documents from the mirror's checkpoint + journal, so
    /// the net effect is at-most-once fleet-wide.
    fn forward_accepted(&mut self, accepted: &[u64]) {
        let mut per_node: BTreeMap<u64, Vec<RankedDocumentIndex>> = BTreeMap::new();
        for &id in accepted {
            let Some(shard) = self.mirror.shard_of(id) else {
                continue;
            };
            if let Some(owner) = self.owner_of[shard] {
                per_node
                    .entry(owner)
                    .or_default()
                    .push(self.mirror.document_index(id).unwrap().clone());
            }
        }
        for (node_id, indices) in per_node {
            let upload = Request::Upload(UploadMessage {
                indices,
                documents: vec![],
            });
            let node = self.nodes.get_mut(&node_id).unwrap();
            match node.client.call(&upload) {
                Ok(Response::Uploaded { .. }) => {}
                _ => self.fail_node(node_id),
            }
        }
    }

    fn exec_upload(&mut self, upload: UploadMessage) -> Response {
        // Mirror the twin's `insert_all`: one by one, stopping at the first
        // invalid index — accepted predecessors remain stored.
        let mut accepted: Vec<u64> = Vec::with_capacity(upload.indices.len());
        let mut error = None;
        for index in upload.indices {
            let id = index.document_id;
            match self.mirror.insert(index) {
                Ok(()) => accepted.push(id),
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        self.forward_accepted(&accepted);
        match error {
            // The twin stores bodies only when every index was accepted.
            Some(e) => Response::Error(e.into()),
            None => {
                for doc in upload.documents {
                    self.documents.insert(doc.document_id, doc);
                }
                Response::Uploaded {
                    documents: self.mirror.len() as u64,
                }
            }
        }
    }

    fn exec_restore(&mut self, bytes: &[u8]) -> Response {
        let indices = match deserialize_store(self.mirror.params(), bytes) {
            Ok(indices) => indices,
            Err(e) => return Response::Error(e.into()),
        };
        let decoded = indices.len() as u64;
        let mut accepted: Vec<u64> = Vec::with_capacity(indices.len());
        let mut error = None;
        for index in indices {
            let id = index.document_id;
            match self.mirror.insert(index) {
                Ok(()) => accepted.push(id),
                Err(e) => {
                    // The twin's `deserialize_into` wraps store refusals as
                    // persistence errors; match it exactly.
                    error = Some(PersistenceError::Store(e));
                    break;
                }
            }
        }
        self.forward_accepted(&accepted);
        match error {
            Some(e) => Response::Error(e.into()),
            None => Response::Restored { documents: decoded },
        }
    }

    fn exec_documents(&mut self, ids: &[u64]) -> Response {
        let mut documents = Vec::with_capacity(ids.len());
        for id in ids {
            match self.documents.get(id) {
                Some(doc) => documents.push(doc.clone()),
                None => return Response::Error(ProtocolError::UnknownDocument(*id)),
            }
        }
        Response::Documents(DocumentReply { documents })
    }
}

impl Service for Coordinator {
    fn call(&mut self, request: Request) -> Response {
        self.telemetry.tally(Counter::RequestsServed, 1);
        self.sweep_deadlines();
        match request {
            Request::Query(message) => self.exec_query(&message),
            Request::BatchQuery(message) => self.exec_batch_query(&message),
            Request::Documents(req) => self.exec_documents(&req.document_ids),
            Request::Upload(upload) => self.exec_upload(upload),
            Request::SnapshotIndex => Response::Snapshot(serialize_index_store(&self.mirror)),
            Request::RestoreIndex(bytes) => self.exec_restore(&bytes),
            Request::ServerInfo => self.exec_server_info(),
            Request::Counters => Response::Counters(self.counters),
            Request::ResetCounters => {
                self.counters.reset();
                Response::Ack
            }
            Request::MetricsSnapshot => Response::MetricsReport(self.telemetry.snapshot()),
            Request::RegisterNode(reg) => self.exec_register(reg),
            Request::NodeHeartbeat(beat) => self.exec_heartbeat(beat.node_id),
            Request::EnableCache { .. } | Request::DisableCache | Request::CacheStats => {
                Response::Error(ProtocolError::Unsupported(format!(
                    "{} is a per-node knob; the fleet coordinator serves the cache-off oracle",
                    request.name()
                )))
            }
            Request::Trapdoor(_) | Request::BlindDecrypt(_) => {
                Response::Error(ProtocolError::Unsupported(format!(
                    "{} is served by the data owner, not the fleet coordinator",
                    request.name()
                )))
            }
        }
    }
}

// The default sequential `call_query_group` is exactly right: the coordinator
// merges per-node replies itself, and the journal-replay oracle compares
// against a twin driven one `Service::call` at a time.
impl FusedService for Coordinator {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::{Hub, HubConfig, HubHandle, MemoryDialer};
    use mkse_core::{DocumentIndexer, QueryBuilder, SchemeKeys};
    use mkse_protocol::{wire, CloudServer, NodeHeartbeat};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const GLOBAL_SHARDS: usize = 4;

    struct Fixture {
        params: SystemParams,
        indices: Vec<RankedDocumentIndex>,
        queries: Vec<QueryMessage>,
    }

    fn fixture() -> Fixture {
        let params = SystemParams::default();
        let mut rng = StdRng::seed_from_u64(10_812);
        let keys = SchemeKeys::generate(&params, &mut rng);
        let indexer = DocumentIndexer::new(&params, &keys);
        let keyword_sets: [&[&str]; 10] = [
            &["cloud", "privacy", "search"],
            &["weather", "forecast"],
            &["cloud", "storage", "pricing"],
            &["encrypted", "archive", "cloud"],
            &["audit", "encryption"],
            &["privacy", "cloud", "data"],
            &["searchable", "encryption"],
            &["cloud", "audit", "logging"],
            &["key", "management", "audit"],
            &["cloud", "migration"],
        ];
        let indices = keyword_sets
            .iter()
            .enumerate()
            .map(|(i, kws)| indexer.index_keywords(i as u64, kws))
            .collect();
        let pool = keys.random_pool_trapdoors(&params);
        let query_sets: [&[&str]; 3] = [&["cloud"], &["audit"], &["cloud", "audit"]];
        let queries = query_sets
            .iter()
            .map(|kws| {
                let trapdoors = keys.trapdoors_for(&params, kws);
                let q = QueryBuilder::new(&params)
                    .add_trapdoors(&trapdoors)
                    .with_randomization(&pool)
                    .build(&mut rng);
                QueryMessage {
                    query: q.bits().clone(),
                    top: None,
                }
            })
            .collect();
        Fixture {
            params,
            indices,
            queries,
        }
    }

    fn spawn_node(params: &SystemParams) -> HubHandle {
        Hub::spawn(
            CloudServer::with_shards(params.clone(), 2),
            HubConfig::default(),
        )
    }

    fn clean_connector(dialer: MemoryDialer) -> Connector {
        Box::new(move |_ordinal| {
            let (reader, writer) = dialer.connect().split();
            Ok((Box::new(reader) as _, Box::new(writer) as _))
        })
    }

    fn quick_fleet(failure_deadline: Duration) -> FleetConfig {
        FleetConfig {
            num_global_shards: GLOBAL_SHARDS,
            heartbeat_interval: Duration::from_millis(50),
            failure_deadline,
            node_policy: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_micros(200),
                backoff_cap: Duration::from_millis(2),
                attempt_timeout: Duration::from_secs(5),
                request_deadline: Duration::from_secs(10),
                retry_non_idempotent: false,
                jitter_per_mille: 250,
                jitter_seed: 7,
            },
        }
    }

    fn register(coordinator: &mut Coordinator, node_id: u64, shard_slots: u32) -> ShardAssignment {
        let reply = coordinator.call(Request::RegisterNode(NodeRegistration {
            node_id,
            capabilities: NodeCapabilities {
                shard_slots,
                scan_lanes: 2,
                cache_capacity: 0,
            },
        }));
        match reply {
            Response::ShardAssignment(a) => a,
            other => panic!("registration refused: {other:?}"),
        }
    }

    fn beat(coordinator: &mut Coordinator, node_id: u64) -> Response {
        coordinator.call(Request::NodeHeartbeat(NodeHeartbeat {
            node_id,
            metrics: mkse_core::MetricsSnapshot::default(),
        }))
    }

    /// Drive the same request against fleet and twin; both replies (and their
    /// encoded frames) must be identical.
    fn assert_twin(
        coordinator: &mut Coordinator,
        twin: &mut CloudServer,
        request: Request,
        label: &str,
    ) -> Response {
        let fleet = coordinator.call(request.clone());
        let single = twin.call(request);
        assert_eq!(fleet, single, "{label}: fleet diverged from twin");
        assert_eq!(
            wire::encode_response(1, &fleet),
            wire::encode_response(1, &single),
            "{label}: frame bytes diverged"
        );
        fleet
    }

    fn gauge(snapshot: &mkse_core::MetricsSnapshot, name: &str) -> u64 {
        snapshot
            .gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("gauge {name} missing"))
    }

    #[test]
    fn fleet_replies_are_byte_identical_to_a_single_node_twin() {
        let fx = fixture();
        let node1 = spawn_node(&fx.params);
        let node2 = spawn_node(&fx.params);
        let mut coordinator =
            Coordinator::new(fx.params.clone(), quick_fleet(Duration::from_secs(60)));
        coordinator.add_node(1, clean_connector(node1.memory_dialer()));
        coordinator.add_node(2, clean_connector(node2.memory_dialer()));
        let mut twin = CloudServer::with_shards(fx.params.clone(), GLOBAL_SHARDS);

        // Register before uploading: writes then fan out per owning node.
        let a1 = register(&mut coordinator, 1, 3);
        assert_eq!(a1.shards, vec![0, 1, 2], "ascending grant up to capacity");
        let a2 = register(&mut coordinator, 2, 0);
        assert_eq!(a2.shards, vec![3], "the remainder goes to the newcomer");
        assert!(a2.epoch > a1.epoch, "every layout change bumps the epoch");

        let upload = Request::Upload(UploadMessage {
            indices: fx.indices.clone(),
            documents: vec![],
        });
        assert_twin(&mut coordinator, &mut twin, upload, "seed upload");
        for (i, q) in fx.queries.iter().enumerate() {
            assert_twin(
                &mut coordinator,
                &mut twin,
                Request::Query(q.clone()),
                &format!("query {i}"),
            );
            assert_twin(
                &mut coordinator,
                &mut twin,
                Request::Query(QueryMessage {
                    top: Some(2),
                    ..q.clone()
                }),
                &format!("query {i} top-2"),
            );
        }
        assert_twin(
            &mut coordinator,
            &mut twin,
            Request::BatchQuery(mkse_protocol::BatchQueryMessage {
                queries: fx.queries.iter().map(|q| q.query.clone()).collect(),
                top: Some(3),
            }),
            "batch query",
        );
        assert_twin(
            &mut coordinator,
            &mut twin,
            Request::SnapshotIndex,
            "index snapshot",
        );
        assert_twin(&mut coordinator, &mut twin, Request::ServerInfo, "info");

        let snapshot = coordinator.telemetry_handle().snapshot();
        assert_eq!(gauge(&snapshot, "nodes_registered"), 2);
        assert_eq!(gauge(&snapshot, "nodes_live"), 2);
        assert_eq!(snapshot.counter("failovers"), 0);

        node1.shutdown();
        node2.shutdown();
    }

    #[test]
    fn missed_deadline_rehomes_shards_and_preserves_replies() {
        let fx = fixture();
        let node1 = spawn_node(&fx.params);
        let node2 = spawn_node(&fx.params);
        let deadline = Duration::from_millis(800);
        let mut coordinator = Coordinator::new(fx.params.clone(), quick_fleet(deadline));
        coordinator.add_node(1, clean_connector(node1.memory_dialer()));
        coordinator.add_node(2, clean_connector(node2.memory_dialer()));
        let mut twin = CloudServer::with_shards(fx.params.clone(), GLOBAL_SHARDS);

        // Upload before any node registers: the corpus lives in the mirror
        // and ships at registration time.
        let upload = Request::Upload(UploadMessage {
            indices: fx.indices.clone(),
            documents: vec![],
        });
        assert_twin(&mut coordinator, &mut twin, upload, "pre-node upload");
        let a1 = register(&mut coordinator, 1, 0);
        assert_eq!(a1.shards, vec![0, 1, 2, 3], "first node takes everything");
        let a2 = register(&mut coordinator, 2, 0);
        assert!(a2.shards.is_empty(), "nothing left for the second node");
        for (i, q) in fx.queries.iter().enumerate() {
            assert_twin(
                &mut coordinator,
                &mut twin,
                Request::Query(q.clone()),
                &format!("pre-failover query {i}"),
            );
        }

        // Node 2 keeps beating; node 1 goes silent past the deadline and the
        // next request sweeps it out — its shards re-home onto node 2 from
        // the checkpointed snapshots.
        std::thread::sleep(Duration::from_millis(600));
        assert!(
            matches!(beat(&mut coordinator, 2), Response::ShardAssignment(_)),
            "live node's beat is answered"
        );
        std::thread::sleep(Duration::from_millis(400));
        for (i, q) in fx.queries.iter().enumerate() {
            assert_twin(
                &mut coordinator,
                &mut twin,
                Request::Query(q.clone()),
                &format!("post-failover query {i}"),
            );
        }
        assert_eq!(coordinator.live_nodes(), vec![2]);
        assert_twin(
            &mut coordinator,
            &mut twin,
            Request::ServerInfo,
            "corpus pinned after failover",
        );

        let snapshot = coordinator.telemetry_handle().snapshot();
        assert_eq!(snapshot.counter("heartbeats_missed"), 1);
        assert_eq!(snapshot.counter("failovers"), 1);
        assert_eq!(snapshot.counter("shards_reassigned"), GLOBAL_SHARDS as u64);
        assert_eq!(gauge(&snapshot, "nodes_live"), 1);
        assert_eq!(gauge(&snapshot, "nodes_registered"), 2);

        // The dead node's beat is refused until it re-registers; after
        // re-registration it is live again (with no shards to serve).
        let refused = beat(&mut coordinator, 1);
        assert!(
            matches!(refused, Response::Error(ProtocolError::Unsupported(_))),
            "dead node must re-register, got {refused:?}"
        );
        let rejoined = register(&mut coordinator, 1, 0);
        assert!(rejoined.shards.is_empty());
        assert_eq!(coordinator.live_nodes(), vec![1, 2]);

        node1.shutdown();
        node2.shutdown();
    }

    #[test]
    fn partial_uploads_match_twin_semantics() {
        let fx = fixture();
        let node1 = spawn_node(&fx.params);
        let mut coordinator =
            Coordinator::new(fx.params.clone(), quick_fleet(Duration::from_secs(60)));
        coordinator.add_node(1, clean_connector(node1.memory_dialer()));
        let mut twin = CloudServer::with_shards(fx.params.clone(), GLOBAL_SHARDS);
        register(&mut coordinator, 1, 0);

        // A duplicate id mid-batch: the prefix lands, the rest is refused —
        // on the fleet exactly as on the twin.
        let mut indices = fx.indices.clone();
        indices[4] = indices[1].clone();
        let poisoned = Request::Upload(UploadMessage {
            indices,
            documents: vec![],
        });
        let reply = assert_twin(&mut coordinator, &mut twin, poisoned, "poisoned upload");
        assert!(
            matches!(reply, Response::Error(ProtocolError::Store(_))),
            "duplicate is a visible store error, got {reply:?}"
        );
        for (i, q) in fx.queries.iter().enumerate() {
            assert_twin(
                &mut coordinator,
                &mut twin,
                Request::Query(q.clone()),
                &format!("post-partial query {i}"),
            );
        }
        assert_twin(&mut coordinator, &mut twin, Request::ServerInfo, "info");

        node1.shutdown();
    }

    #[test]
    fn foreign_and_unknown_operations_are_refused() {
        let fx = fixture();
        let mut coordinator =
            Coordinator::new(fx.params.clone(), quick_fleet(Duration::from_secs(60)));

        let unknown = coordinator.call(Request::RegisterNode(NodeRegistration {
            node_id: 99,
            capabilities: NodeCapabilities::default(),
        }));
        assert!(
            matches!(unknown, Response::Error(ProtocolError::Unsupported(_))),
            "no connector, no registration: {unknown:?}"
        );
        let unregistered = beat(&mut coordinator, 99);
        assert!(matches!(
            unregistered,
            Response::Error(ProtocolError::Unsupported(_))
        ));
        for request in [
            Request::EnableCache {
                capacity_per_shard: 8,
            },
            Request::DisableCache,
            Request::CacheStats,
        ] {
            let reply = coordinator.call(request);
            assert!(
                matches!(reply, Response::Error(ProtocolError::Unsupported(_))),
                "cache admin is per-node: {reply:?}"
            );
        }

        // An empty fleet still answers an empty corpus truthfully.
        let reply = coordinator.call(Request::Query(fx.queries[0].clone()));
        match reply {
            Response::Search(r) => assert!(r.matches.is_empty()),
            other => panic!("empty fleet, empty corpus: {other:?}"),
        }
    }
}
