//! # mkse-net — concurrent socket transport with cross-client batch formation
//!
//! The engine can fuse a whole batch of queries into one scan-plane pass, but
//! a single client rarely has a batch in hand. This crate is the network
//! front door that manufactures those batches out of *independent* traffic:
//! a hub process owns the index ([`hub::Hub`]), many clients connect over
//! `std::net::TcpListener` or the deterministic in-process
//! [`link::MemoryLink`] twin, and single-query frames that arrive within a
//! few hundred microseconds of each other — from *different* connections —
//! are coalesced into one [`FusedService::call_query_group`] pass.
//!
//! The house invariant extends across the wire: **the transport and the
//! batcher are invisible**. N concurrent clients receive byte-identical
//! replies, `SearchStats`, and cache counters to the same requests issued
//! sequentially in-process; the hub's optional execution journal
//! ([`hub::HubReport::journal`]) lets the equivalence suites replay any
//! concurrent run sequentially and prove it.
//!
//! Layering:
//!
//! ```text
//!   ResilientClient ─────▶ NetClient ──frames──▶ reader thread ──events──▶ dispatcher thread
//!   (retry/reconnect,      (pipelined)  │        (FrameBuffer,             (single writer: owns the
//!    backoff, at-most-once)             │         per-conn gate,            FusedService + batcher,
//!                                       ▼         hub-wide budget,          demultiplexes replies,
//!                                  FaultyLink     idle/size hygiene)        sheds → Overloaded)
//!                                  (optional seeded chaos wrapper)
//! ```
//!
//! The resilience layer ([`fault`], [`resilient`], hub overload shedding) is
//! built so chaos stays *deterministic*: a [`fault::FaultPlan`] seed fully
//! determines the fault schedule, a shed request is refused **before**
//! execution (so the journal-replay oracle is untouched), and the
//! [`resilient::ResilientClient`] accounts every attempt under the
//! conservation law `attempts == successes + sheds + link_faults`.
//!
//! On top of the transport sits the **fleet layer** ([`coordinator`],
//! [`node`]): shard-server nodes — each a `CloudServer` behind its own hub —
//! register with a [`coordinator::Coordinator`] over the same framed codec
//! (`RegisterNode` / `NodeHeartbeat` envelope ops), which scatter-gathers
//! queries across live nodes, merges replies in canonical rank order, and on
//! a node death (missed health deadline or exhausted retries) re-homes the
//! lost shards onto survivors from layout-independent per-shard snapshots
//! plus an insert journal:
//!
//! ```text
//!   clients ──▶ coordinator hub ──▶ Coordinator (Service)
//!                                     │  mirror store + doc bodies + per-shard checkpoints
//!                                     │  scatter/merge · health deadlines · failover
//!                         ResilientClient per node (retry_non_idempotent OFF)
//!                                     ▼
//!                node hub ──▶ CloudServer     node hub ──▶ CloudServer   …
//!                (NodeRunner: register + heartbeat over the control plane)
//! ```
//!
//! The house invariant survives the fleet: every completed reply is
//! byte-identical to a single sequential server holding the whole corpus,
//! even across failovers — `tests/fleet_chaos.rs` proves it with seeded kill
//! schedules and journal replay.

pub mod client;
pub mod coordinator;
pub mod fault;
pub mod frame;
pub mod hub;
pub mod link;
pub mod node;
pub mod resilient;

pub use client::{ClientError, NetClient};
pub use coordinator::{Coordinator, FleetConfig};
pub use fault::{FaultEvent, FaultHandle, FaultPlan, FaultyLink, FaultyReader, FaultyWriter};
pub use frame::FrameBuffer;
pub use hub::{Hub, HubConfig, HubHandle, HubReport, JournalEntry, MemoryDialer};
pub use link::{memory_duplex, LinkReader, LinkWriter, MemoryLink, MemoryReader, MemoryWriter};
pub use node::{NodeConfig, NodeError, NodeRunner};
pub use resilient::{Connector, ResilienceStats, ResilientClient, RetryPolicy};

use mkse_protocol::{CloudServer, QueryMessage, Request, Response, Service};

/// A [`Service`] that can additionally execute a *group* of independent
/// single-query envelopes in one pass. The contract is strict: replies, their
/// cache reports, and every operation counter must be byte-identical to
/// calling [`Service::call`] once per message in group order — the default
/// implementation is exactly that, and the hub's batcher relies on it to stay
/// invisible.
pub trait FusedService: Service {
    /// Execute `messages` as one group, one [`Response`] per message in order.
    fn call_query_group(&mut self, messages: &[QueryMessage]) -> Vec<Response> {
        messages
            .iter()
            .map(|m| self.call(Request::Query(m.clone())))
            .collect()
    }
}

impl FusedService for CloudServer {
    /// One fused scan-plane pass over the whole group
    /// ([`CloudServer::call_query_group`]).
    fn call_query_group(&mut self, messages: &[QueryMessage]) -> Vec<Response> {
        CloudServer::call_query_group(self, messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkse_core::bitindex::BitIndex;
    use mkse_core::telemetry::{Telemetry, TelemetryLevel};
    use mkse_protocol::messages::{CacheReport, SearchReply, SearchResultEntry};
    use mkse_protocol::{ProtocolError, TransportError};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    /// A deterministic stand-in service: answers queries with a reply derived
    /// from the query bits, echoes restore sizes, acks the rest. Uses the
    /// default (sequential) `call_query_group`, so transport tests exercise
    /// the hub machinery without the full engine underneath.
    struct EchoService {
        telemetry: Telemetry,
        calls: Arc<AtomicU64>,
    }

    impl EchoService {
        fn new(level: TelemetryLevel) -> (EchoService, Arc<AtomicU64>) {
            let telemetry = Telemetry::new();
            telemetry.set_level(level);
            let calls = Arc::new(AtomicU64::new(0));
            (
                EchoService {
                    telemetry,
                    calls: calls.clone(),
                },
                calls,
            )
        }
    }

    impl Service for EchoService {
        fn call(&mut self, request: Request) -> Response {
            self.calls.fetch_add(1, Ordering::SeqCst);
            match request {
                Request::Query(m) => Response::Search(SearchReply {
                    matches: vec![SearchResultEntry {
                        document_id: m.query.count_ones() as u64,
                        rank: m.query.len() as u32,
                        metadata: Vec::new(),
                    }],
                    cache: CacheReport::default(),
                }),
                Request::RestoreIndex(bytes) => Response::Restored {
                    documents: bytes.len() as u64,
                },
                _ => Response::Ack,
            }
        }

        fn telemetry(&self) -> Option<&Telemetry> {
            Some(&self.telemetry)
        }
    }

    impl FusedService for EchoService {}

    fn query(ones: usize, len: usize) -> Request {
        let mut bits = BitIndex::all_zeros(len);
        for i in 0..ones {
            bits.set(i, true);
        }
        Request::Query(QueryMessage {
            query: bits,
            top: None,
        })
    }

    const WAIT: Duration = Duration::from_secs(5);

    #[test]
    fn memory_round_trip_over_the_hub() {
        let (service, calls) = EchoService::new(TelemetryLevel::Counters);
        let telemetry = service.telemetry.clone();
        let hub = Hub::spawn(service, HubConfig::default());
        let mut client = NetClient::from_memory(hub.connect_memory());
        let reply = client.call(&query(3, 16), WAIT).unwrap();
        match reply {
            Response::Search(r) => {
                assert_eq!(r.matches[0].document_id, 3);
                assert_eq!(r.matches[0].rank, 16);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        let echoed = client
            .call(&Request::RestoreIndex(vec![7; 42]), WAIT)
            .unwrap();
        assert_eq!(echoed, Response::Restored { documents: 42 });
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        let report = hub.shutdown();
        assert_eq!(report.connections, 1);
        assert_eq!(report.requests, 2);
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.counter("wire_frames_in"), 2);
        assert_eq!(snapshot.counter("wire_frames_out"), 2);
        assert_eq!(snapshot.counter("connections_opened"), 1);
        assert_eq!(snapshot.counter("connections_closed"), 1);
        assert_eq!(client.wire_stats().frames_sent, 2);
        assert_eq!(client.wire_stats().frames_received, 2);
    }

    #[test]
    fn tcp_round_trip_over_the_hub() {
        let (service, _) = EchoService::new(TelemetryLevel::Off);
        let hub = Hub::spawn(service, HubConfig::default());
        let addr = hub.bind_tcp("127.0.0.1:0").unwrap();
        let mut a = NetClient::connect_tcp(addr).unwrap();
        let mut b = NetClient::connect_tcp(addr)
            .unwrap()
            .with_first_request_id(1_000_001);
        let ia = a.submit(&query(1, 8));
        let ib = b.submit(&query(5, 8));
        a.flush().unwrap();
        b.flush().unwrap();
        let ra = a.wait_take(ia, WAIT).unwrap();
        let rb = b.wait_take(ib, WAIT).unwrap();
        match (ra, rb) {
            (Response::Search(ra), Response::Search(rb)) => {
                assert_eq!(ra.matches[0].document_id, 1);
                assert_eq!(rb.matches[0].document_id, 5);
            }
            other => panic!("unexpected replies {other:?}"),
        }
        let report = hub.shutdown();
        assert_eq!(report.connections, 2);
        assert_eq!(report.requests, 2);
    }

    #[test]
    fn batcher_coalesces_across_connections() {
        let (service, _) = EchoService::new(TelemetryLevel::Counters);
        let telemetry = service.telemetry.clone();
        let config = HubConfig {
            batch_window: Duration::from_millis(50),
            journal: true,
            ..HubConfig::default()
        };
        let hub = Hub::spawn(service, config);
        let mut a = NetClient::from_memory(hub.connect_memory());
        let mut b = NetClient::from_memory(hub.connect_memory()).with_first_request_id(1_000_001);
        let ia = a.submit(&query(2, 8));
        let ib = b.submit(&query(4, 8));
        a.flush().unwrap();
        b.flush().unwrap();
        let ra = a.wait_take(ia, WAIT).unwrap();
        let rb = b.wait_take(ib, WAIT).unwrap();
        // Replies are demultiplexed to the right connection by request id.
        match (&ra, &rb) {
            (Response::Search(ra), Response::Search(rb)) => {
                assert_eq!(ra.matches[0].document_id, 2);
                assert_eq!(rb.matches[0].document_id, 4);
            }
            other => panic!("unexpected replies {other:?}"),
        }
        let report = hub.shutdown();
        assert_eq!(report.requests, 2);
        let snapshot = telemetry.snapshot();
        // With two active connections neither query takes the solo path; at
        // least one flush happened and both queries were coalesced (one flush
        // of 2 if they landed in the same window, two flushes of 1 if not).
        assert_eq!(snapshot.counter("batcher_coalesced_queries"), 2);
        assert_eq!(snapshot.counter("batcher_solo_dispatches"), 0);
        let flushes = snapshot.counter("batcher_flush_window")
            + snapshot.counter("batcher_flush_depth")
            + snapshot.counter("batcher_flush_barrier")
            + snapshot.counter("batcher_flush_shutdown");
        assert!(flushes >= 1);
        // Occupancy histogram recorded one sample per flush.
        let occupancy = snapshot
            .values
            .iter()
            .find(|v| v.series == "batch_occupancy")
            .expect("occupancy series recorded");
        assert_eq!(occupancy.count, flushes);
        assert_eq!(occupancy.sum, 2);
        // The journal holds both queries in execution order.
        assert_eq!(report.journal.len(), 2);
    }

    #[test]
    fn single_connection_takes_the_solo_path() {
        let (service, _) = EchoService::new(TelemetryLevel::Counters);
        let telemetry = service.telemetry.clone();
        let hub = Hub::spawn(service, HubConfig::default());
        let mut client = NetClient::from_memory(hub.connect_memory());
        for _ in 0..3 {
            let reply = client.call(&query(1, 8), WAIT).unwrap();
            assert!(matches!(reply, Response::Search(_)));
        }
        drop(hub.shutdown());
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.counter("batcher_solo_dispatches"), 3);
        assert_eq!(snapshot.counter("batcher_coalesced_queries"), 0);
    }

    #[test]
    fn oversized_frame_gets_typed_error_and_closes_only_that_connection() {
        let (service, _) = EchoService::new(TelemetryLevel::Off);
        let config = HubConfig {
            max_frame_bytes: 64,
            ..HubConfig::default()
        };
        let hub = Hub::spawn(service, config);
        let mut offender = NetClient::from_memory(hub.connect_memory());
        let mut bystander =
            NetClient::from_memory(hub.connect_memory()).with_first_request_id(1_000_001);
        // A prefix declaring 1 MiB against a 64-byte limit: the reject fires
        // from the 4 prefix bytes alone, before any payload exists.
        offender.send_raw(&(1u32 << 20).to_le_bytes()).unwrap();
        let reply = offender.wait_take(0, WAIT).unwrap();
        assert_eq!(
            reply,
            Response::Error(ProtocolError::Transport(TransportError::FrameTooLarge {
                declared: 1 << 20,
                max: 64,
            }))
        );
        // The connection is closed after the error frame...
        assert!(matches!(
            offender.wait_take(42, WAIT),
            Err(ClientError::Disconnected { .. })
        ));
        // ...but the bystander connection still works.
        let ok = bystander.call(&query(2, 8), WAIT).unwrap();
        assert!(matches!(ok, Response::Search(_)));
        drop(hub.shutdown());
    }

    #[test]
    fn corrupt_frame_poisons_only_its_connection() {
        let (service, _) = EchoService::new(TelemetryLevel::Off);
        let hub = Hub::spawn(service, HubConfig::default());
        let mut poisoned = NetClient::from_memory(hub.connect_memory());
        let mut healthy =
            NetClient::from_memory(hub.connect_memory()).with_first_request_id(1_000_001);
        // A well-framed but undecodable payload.
        let mut junk = (3u32).to_le_bytes().to_vec();
        junk.extend_from_slice(&[0xff, 0xff, 0xff]);
        poisoned.send_raw(&junk).unwrap();
        let reply = poisoned.wait_take(0, WAIT).unwrap();
        assert!(matches!(reply, Response::Error(ProtocolError::Codec(_))));
        assert!(matches!(
            poisoned.wait_take(1, WAIT),
            Err(ClientError::Disconnected { .. })
        ));
        let ok = healthy.call(&query(3, 8), WAIT).unwrap();
        assert!(matches!(ok, Response::Search(_)));
        drop(hub.shutdown());
    }

    #[test]
    fn idle_connection_is_reaped_with_typed_error() {
        let (service, _) = EchoService::new(TelemetryLevel::Off);
        let config = HubConfig {
            idle_timeout: Duration::from_millis(30),
            read_timeout: Duration::from_millis(5),
            ..HubConfig::default()
        };
        let hub = Hub::spawn(service, config);
        let mut client = NetClient::from_memory(hub.connect_memory());
        // Send nothing; the hub reaps the connection with a typed error.
        let reply = client.wait_take(0, WAIT).unwrap();
        assert_eq!(
            reply,
            Response::Error(ProtocolError::Transport(TransportError::IdleTimeout {
                idle_ms: 30
            }))
        );
        assert!(matches!(
            client.wait_take(1, WAIT),
            Err(ClientError::Disconnected { .. })
        ));
        drop(hub.shutdown());
    }

    #[test]
    fn hub_budget_sheds_excess_with_typed_overloaded_and_connection_survives() {
        let (service, _) = EchoService::new(TelemetryLevel::Counters);
        let telemetry = service.telemetry.clone();
        let config = HubConfig {
            // Budget of one in-flight request hub-wide; a long-ish window
            // keeps the admitted query parked in the batcher while the second
            // arrives, so the shed is deterministic.
            max_hub_in_flight: 1,
            shed_retry_after: Duration::from_millis(7),
            batch_window: Duration::from_millis(500),
            batch_depth: 1024,
            journal: true,
            ..HubConfig::default()
        };
        let hub = Hub::spawn(service, config);
        let mut a = NetClient::from_memory(hub.connect_memory());
        let mut b = NetClient::from_memory(hub.connect_memory()).with_first_request_id(1_000_001);
        let ia = a.submit(&query(2, 16));
        a.flush().unwrap();
        // Wait until A's query holds the only budget slot (parked in the
        // batcher, pending the window flush).
        while hub.frames_accepted() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let ib = b.submit(&query(4, 16));
        b.flush().unwrap();
        // B is shed immediately with the typed error echoing the configured
        // hint — the saturated hub still answers, it does not stall B.
        let shed = b.wait_take(ib, WAIT).unwrap();
        assert_eq!(
            shed,
            Response::Error(ProtocolError::Transport(TransportError::Overloaded {
                retry_after_ms: 7
            }))
        );
        // A's admitted query completes once the window flushes, releasing
        // the budget slot...
        let ra = a.wait_take(ia, WAIT).unwrap();
        assert!(matches!(ra, Response::Search(_)));
        // ...and B's connection survived the shed: a retry now succeeds.
        let rb = b.call(&query(4, 16), WAIT).unwrap();
        assert!(matches!(rb, Response::Search(_)));
        let report = hub.shutdown();
        assert_eq!(report.sheds, 1);
        // The shed request was refused before execution: never counted as an
        // executed request, never journaled — the replay oracle sees only
        // the two executed queries.
        assert_eq!(report.requests, 2);
        assert_eq!(report.journal.len(), 2);
        assert_eq!(telemetry.snapshot().counter("sheds"), 1);
    }

    #[test]
    fn shutdown_drains_every_accepted_request() {
        let (service, _) = EchoService::new(TelemetryLevel::Off);
        let config = HubConfig {
            // A long window and deep depth: in-flight queries sit in the
            // batcher when the shutdown lands, exercising the drain flush.
            batch_window: Duration::from_secs(10),
            batch_depth: 1024,
            ..HubConfig::default()
        };
        let hub = Hub::spawn(service, config);
        let mut a = NetClient::from_memory(hub.connect_memory());
        let mut b = NetClient::from_memory(hub.connect_memory()).with_first_request_id(1_000_001);
        const K: usize = 8;
        let mut ids = Vec::new();
        for i in 0..K {
            ids.push((0, a.submit(&query(i + 1, 16))));
            ids.push((1, b.submit(&query(i + 2, 16))));
        }
        a.flush().unwrap();
        b.flush().unwrap();
        // Wait until every frame has passed the gate, then pull the plug.
        while hub.frames_accepted() < (2 * K) as u64 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = hub.shutdown();
        assert_eq!(report.requests, (2 * K) as u64);
        // No lost replies: both clients can still read all K answers off the
        // (closed but buffered) links.
        for (who, id) in ids {
            let client = if who == 0 { &mut a } else { &mut b };
            let reply = client.wait_take(id, WAIT).unwrap();
            assert!(matches!(reply, Response::Search(_)), "request {id} lost");
        }
    }
}
