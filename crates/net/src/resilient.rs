//! The retrying, reconnecting client: [`ResilientClient`] wraps [`NetClient`]
//! with a [`RetryPolicy`] so a dropped link, a lost reply, or an overloaded
//! hub surfaces as a transparent retry instead of a bare error — with
//! **at-most-once semantics kept explicit**.
//!
//! ## What gets retried
//!
//! *Idempotent* requests (query, batch query, documents, trapdoor, blind
//! decrypt, and all read-only admin ops) are resubmitted after a reconnect:
//! executing one twice yields byte-identical replies and leaves no extra
//! state, so a duplicate execution is invisible. *Non-idempotent* requests
//! (upload, cache admin, restore, counter reset) are **never** auto-retried
//! after a mid-flight link failure — the client cannot know whether the
//! server executed the lost attempt, so resubmitting could double-apply it.
//! They fail with [`ClientError::RetryUnsafe`] unless the caller opts into
//! at-least-once via [`RetryPolicy::retry_non_idempotent`] (the server's
//! duplicate-document rejection then makes any duplication *visible*, never
//! silent).
//!
//! The one exception: a [`TransportError::Overloaded`] reply means the hub
//! shed the request **before execution**, so honoring its `retry_after_ms`
//! hint and resubmitting is safe for every operation, idempotent or not.
//!
//! ## Conservation law
//!
//! Every attempt ends in exactly one of three ways — a completed reply, an
//! overload shed, or a link fault — so per client
//! `attempts == successes + sheds + link_faults` holds exactly
//! ([`ResilienceStats`]); `tests/net_chaos.rs` asserts it under seeded fault
//! plans.

use crate::client::{ClientError, NetClient};
use crate::link::{LinkReader, LinkWriter};
use mkse_core::telemetry::{Counter, Stage, Telemetry};
use mkse_protocol::{ProtocolError, Request, Response, TransportError, WireStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How a [`ResilientClient`] retries: attempt budget, exponential backoff
/// with a cap and seeded jitter, per-attempt reply timeout, and a
/// per-request deadline (honored across connect attempts too — a hung
/// connector cannot pin a request past its deadline).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included); at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff: Duration,
    /// Upper bound on one backoff sleep (a shed's `retry_after_ms` hint can
    /// still raise an individual sleep above the exponential value).
    pub backoff_cap: Duration,
    /// How long one attempt waits for its reply before the attempt is
    /// declared lost (bounds the damage of a reply that will never arrive,
    /// e.g. a corrupted request id).
    pub attempt_timeout: Duration,
    /// Wall-clock budget for the whole request across all attempts.
    pub request_deadline: Duration,
    /// Opt into at-least-once for non-idempotent requests: resubmit them
    /// after link failures instead of returning
    /// [`ClientError::RetryUnsafe`]. Duplicated executions surface as
    /// visible server-side errors (e.g. duplicate-document rejections).
    pub retry_non_idempotent: bool,
    /// Backoff jitter amplitude in per-mille of the exponential value: each
    /// sleep is perturbed uniformly within ±(exp · jitter_per_mille / 1000)
    /// before the floor and deadline clamps, de-synchronizing clients that
    /// shed or fault at the same instant. `0` disables jitter entirely.
    pub jitter_per_mille: u32,
    /// Seed for the jitter stream. Same seed, same policy, same fault
    /// schedule ⇒ the same backoff sequence, so seeded chaos runs stay
    /// reproducible; give concurrent clients distinct seeds to spread them.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(100),
            attempt_timeout: Duration::from_secs(2),
            request_deadline: Duration::from_secs(10),
            retry_non_idempotent: false,
            jitter_per_mille: 250,
            jitter_seed: 0,
        }
    }
}

/// What a [`ResilientClient`] did, attempt by attempt. The conservation law
/// `attempts == successes + sheds + link_faults` holds exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Request submissions (first tries and retries).
    pub attempts: u64,
    /// Attempts answered with a completed reply (including typed server-side
    /// errors — a reply is a reply).
    pub successes: u64,
    /// Attempts answered with `TransportError::Overloaded` (shed before
    /// execution, retried after the advisory backoff).
    pub sheds: u64,
    /// Attempts lost to the link: send/receive failures, EOF, lost replies
    /// (attempt timeout).
    pub link_faults: u64,
    /// Attempts beyond the first, across all requests.
    pub retries: u64,
    /// Connections established beyond the first.
    pub reconnects: u64,
    /// Backoff sleeps taken between attempts.
    pub backoff_waits: u64,
    /// Total nanoseconds slept backing off.
    pub backoff_ns: u64,
    /// Requests refused as [`ClientError::RetryUnsafe`].
    pub unsafe_aborts: u64,
}

/// Produces a fresh split link per connection attempt. The argument is the
/// 0-based connection ordinal, so a chaos harness can derive a distinct
/// deterministic fault seed per connection.
pub type Connector = Box<dyn FnMut(u64) -> io::Result<Links> + Send>;

/// A freshly dialed reader/writer pair, as produced by a [`Connector`].
pub type Links = (Box<dyn LinkReader>, Box<dyn LinkWriter>);

/// A [`NetClient`] wrapped in reconnect-and-retry machinery. Request ids stay
/// globally unique across reconnects (the replacement client resumes the id
/// sequence), so the hub journal still correlates every attempt.
pub struct ResilientClient {
    /// Ordinals queued to the dialer thread that owns the connector.
    dial_tx: mpsc::Sender<u64>,
    /// Finished dials back from the dialer thread.
    dial_rx: mpsc::Receiver<io::Result<Links>>,
    /// A dial is in flight: its eventual result must be consumed before a
    /// new ordinal may be queued, even if an earlier wait for it timed out.
    dial_pending: bool,
    policy: RetryPolicy,
    client: Option<NetClient>,
    /// Next request id, carried across reconnects.
    next_id: u64,
    /// Connections established so far (ordinal passed to the connector).
    connections: u64,
    stats: ResilienceStats,
    /// Wire stats accumulated from connections already torn down.
    retired_wire: WireStats,
    telemetry: Option<Telemetry>,
    /// Seeded jitter stream; `None` when the policy disables jitter.
    jitter: Option<StdRng>,
}

impl ResilientClient {
    /// Wrap `connector` with `policy`. No connection is made until the first
    /// request needs one. The connector runs on a dedicated dialer thread so
    /// a hung connect cannot pin a request past its deadline; the thread
    /// exits once the client is dropped and any in-flight dial returns.
    pub fn new(mut connector: Connector, policy: RetryPolicy) -> ResilientClient {
        let (dial_tx, ordinal_rx) = mpsc::channel::<u64>();
        let (result_tx, dial_rx) = mpsc::channel();
        std::thread::spawn(move || {
            while let Ok(ordinal) = ordinal_rx.recv() {
                if result_tx.send(connector(ordinal)).is_err() {
                    break;
                }
            }
        });
        let jitter =
            (policy.jitter_per_mille > 0).then(|| StdRng::seed_from_u64(policy.jitter_seed));
        ResilientClient {
            dial_tx,
            dial_rx,
            dial_pending: false,
            policy,
            client: None,
            next_id: 1,
            connections: 0,
            stats: ResilienceStats::default(),
            retired_wire: WireStats::default(),
            telemetry: None,
            jitter,
        }
    }

    /// Start request-id assignment at `id` (builder-style), as
    /// [`NetClient::with_first_request_id`].
    pub fn with_first_request_id(mut self, id: u64) -> ResilientClient {
        self.next_id = id;
        self
    }

    /// Mirror retries/reconnects/backoff into a telemetry registry
    /// (builder-style): [`Counter::Retries`], [`Counter::Reconnects`] and
    /// the [`Stage::BackoffWait`] histogram.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> ResilientClient {
        self.telemetry = Some(telemetry);
        self
    }

    /// The id the next submission will use (live connection or not).
    pub fn next_request_id(&self) -> u64 {
        match &self.client {
            Some(client) => client.next_request_id(),
            None => self.next_id,
        }
    }

    /// Attempt-level accounting so far.
    pub fn stats(&self) -> ResilienceStats {
        self.stats
    }

    /// Frames, framed bytes and blocked reply-wait time across every
    /// connection this client has used.
    pub fn wire_stats(&self) -> WireStats {
        match &self.client {
            Some(client) => self.retired_wire.plus(&client.wire_stats()),
            None => self.retired_wire,
        }
    }

    /// Whether a request can be blindly resubmitted after a mid-flight link
    /// failure. Mutating ops are not: the lost attempt may or may not have
    /// executed server-side.
    pub fn is_idempotent(request: &Request) -> bool {
        !matches!(
            request,
            Request::Upload(_)
                | Request::EnableCache { .. }
                | Request::DisableCache
                | Request::RestoreIndex(_)
                | Request::ResetCounters
        )
    }

    /// Connect if disconnected, waiting no longer than `deadline`. A connect
    /// still in flight when the deadline passes keeps running on the dialer
    /// thread; its result is consumed (and the link reused) by the next call
    /// instead of leaking or double-dialing.
    fn ensure_connected(&mut self, deadline: Instant) -> Result<&mut NetClient, ClientError> {
        if self.client.is_none() {
            if !self.dial_pending {
                let ordinal = self.connections;
                self.dial_tx
                    .send(ordinal)
                    .map_err(|_| ClientError::Io(io::Error::other("dialer thread exited")))?;
                self.dial_pending = true;
            }
            let wait = deadline.saturating_duration_since(Instant::now());
            let dialed = match self.dial_rx.recv_timeout(wait) {
                Ok(result) => {
                    self.dial_pending = false;
                    result.map_err(ClientError::Io)?
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Deadline elapsed mid-connect: surface the timeout now,
                    // leave `dial_pending` set so the eventual link is reused.
                    return Err(ClientError::TimedOut {
                        request_id: self.next_id,
                    });
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(ClientError::Io(io::Error::other("dialer thread exited")));
                }
            };
            let ordinal = self.connections;
            let (reader, writer) = dialed;
            self.connections += 1;
            if ordinal > 0 {
                self.stats.reconnects += 1;
                if let Some(tel) = &self.telemetry {
                    tel.add(Counter::Reconnects, 1);
                }
            }
            self.client =
                Some(NetClient::from_parts(reader, writer).with_first_request_id(self.next_id));
        }
        Ok(self.client.as_mut().expect("just connected"))
    }

    /// Tear down the current connection (the dropped halves close the link),
    /// banking its wire stats and id progress.
    fn drop_connection(&mut self) {
        if let Some(client) = self.client.take() {
            self.next_id = client.next_request_id();
            self.retired_wire = self.retired_wire.plus(&client.wire_stats());
        }
    }

    fn backoff(&mut self, attempt: u32, floor: Duration, deadline: Instant) {
        let mut exp = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.policy.backoff_cap);
        if let Some(rng) = &mut self.jitter {
            // Uniform in ±(exp · jitter_per_mille / 1000), drawn from the
            // seeded stream so identical seeds replay identical sleeps.
            let span = exp.as_nanos() as u64 * self.policy.jitter_per_mille as u64 / 1000;
            if span > 0 {
                let offset = rng.gen_range(0..=2 * span) as i64 - span as i64;
                let jittered = (exp.as_nanos() as i64).saturating_add(offset).max(0);
                exp = Duration::from_nanos(jittered as u64);
            }
        }
        let sleep = exp.max(floor);
        // Never sleep past the request deadline.
        let sleep = sleep.min(deadline.saturating_duration_since(Instant::now()));
        if sleep.is_zero() {
            return;
        }
        self.stats.backoff_waits += 1;
        self.stats.backoff_ns += sleep.as_nanos() as u64;
        if let Some(tel) = &self.telemetry {
            tel.record_duration(Stage::BackoffWait, sleep.as_nanos() as u64);
        }
        std::thread::sleep(sleep);
    }

    /// One request, end to end: connect if needed, submit, await the reply;
    /// on an overload shed or (for idempotent requests) a link fault,
    /// back off and retry until the policy's attempt or deadline budget runs
    /// out. Returns the final completed reply, the final shed reply (if the
    /// budget ran out while overloaded), or the last error.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.call_traced(request).map(|(_, response)| response)
    }

    /// [`ResilientClient::call`], also returning the request id of the
    /// attempt that produced the reply — the id under which the hub journaled
    /// (or shed) it, which is what equivalence oracles correlate on.
    pub fn call_traced(&mut self, request: &Request) -> Result<(u64, Response), ClientError> {
        let retry_safe = Self::is_idempotent(request) || self.policy.retry_non_idempotent;
        let deadline = Instant::now() + self.policy.request_deadline;
        let mut attempt = 0u32;
        loop {
            if attempt > 0 {
                self.stats.retries += 1;
                if let Some(tel) = &self.telemetry {
                    tel.add(Counter::Retries, 1);
                }
            }
            let outcome = self.attempt(request, deadline);
            attempt += 1;
            let budget_left = attempt < self.policy.max_attempts && Instant::now() < deadline;
            match outcome {
                Ok((
                    id,
                    Response::Error(ProtocolError::Transport(TransportError::Overloaded {
                        retry_after_ms,
                    })),
                )) => {
                    // Shed before execution: safe to retry anything, after
                    // honoring the server's hint as a backoff floor.
                    self.stats.sheds += 1;
                    if !budget_left {
                        return Ok((
                            id,
                            Response::Error(ProtocolError::Transport(TransportError::Overloaded {
                                retry_after_ms,
                            })),
                        ));
                    }
                    self.backoff(attempt, Duration::from_millis(retry_after_ms), deadline);
                }
                Ok((id, response)) => {
                    self.stats.successes += 1;
                    return Ok((id, response));
                }
                Err(error) => {
                    // The attempt died with the link: reconnect on the next
                    // try. Whether the server executed it is unknowable here.
                    self.stats.link_faults += 1;
                    self.drop_connection();
                    if !retry_safe {
                        self.stats.unsafe_aborts += 1;
                        return Err(ClientError::RetryUnsafe {
                            op: request.name(),
                            cause: Box::new(error),
                        });
                    }
                    if !budget_left {
                        return Err(error);
                    }
                    self.backoff(attempt, Duration::ZERO, deadline);
                }
            }
        }
    }

    /// One submission: returns the request id and reply (completed or shed),
    /// or the link error that consumed the attempt.
    fn attempt(
        &mut self,
        request: &Request,
        deadline: Instant,
    ) -> Result<(u64, Response), ClientError> {
        self.stats.attempts += 1;
        let attempt_timeout = self.policy.attempt_timeout;
        let client = self.ensure_connected(deadline)?;
        let id = client.submit(request);
        client.flush()?;
        let wait = attempt_timeout.min(deadline.saturating_duration_since(Instant::now()));
        client.wait_take(id, wait).map(|response| (id, response))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyLink};
    use crate::hub::{Hub, HubConfig};
    use crate::FusedService;
    use mkse_core::bitindex::BitIndex;
    use mkse_protocol::messages::{CacheReport, QueryMessage, SearchReply, SearchResultEntry};
    use mkse_protocol::{Service, UploadMessage};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Query-echo service counting upload executions, for at-most-once
    /// assertions.
    struct CountingService {
        uploads: Arc<AtomicU64>,
    }

    impl Service for CountingService {
        fn call(&mut self, request: Request) -> Response {
            match request {
                Request::Query(m) => Response::Search(SearchReply {
                    matches: vec![SearchResultEntry {
                        document_id: m.query.count_ones() as u64,
                        rank: m.query.len() as u32,
                        metadata: Vec::new(),
                    }],
                    cache: CacheReport::default(),
                }),
                Request::Upload(_) => {
                    self.uploads.fetch_add(1, Ordering::SeqCst);
                    Response::Uploaded { documents: 1 }
                }
                _ => Response::Ack,
            }
        }

        fn telemetry(&self) -> Option<&mkse_core::telemetry::Telemetry> {
            None
        }
    }

    impl FusedService for CountingService {}

    fn query(ones: usize) -> Request {
        let mut bits = BitIndex::all_zeros(16);
        for i in 0..ones {
            bits.set(i, true);
        }
        Request::Query(QueryMessage {
            query: bits,
            top: None,
        })
    }

    fn upload() -> Request {
        Request::Upload(UploadMessage {
            indices: vec![],
            documents: vec![],
        })
    }

    fn quick_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_micros(200),
            backoff_cap: Duration::from_millis(5),
            attempt_timeout: Duration::from_millis(250),
            request_deadline: Duration::from_secs(10),
            retry_non_idempotent: false,
            jitter_per_mille: 250,
            jitter_seed: 42,
        }
    }

    /// A connector over the hub's memory dialer whose first `kills` links die
    /// on the first write; later links are clean.
    fn flaky_connector(hub: &crate::hub::HubHandle, kills: u64) -> Connector {
        let dialer = hub.memory_dialer();
        Box::new(move |ordinal| {
            let (reader, writer) = dialer.connect().split();
            if ordinal < kills {
                let (r, w, _h) = FaultyLink::wrap(
                    Box::new(reader),
                    Box::new(writer),
                    FaultPlan {
                        kill_after_bytes: Some(0),
                        ..FaultPlan::healthy(ordinal)
                    },
                );
                Ok((Box::new(r), Box::new(w)))
            } else {
                Ok((Box::new(reader), Box::new(writer)))
            }
        })
    }

    #[test]
    fn idempotent_requests_survive_dead_links_via_reconnect() {
        let uploads = Arc::new(AtomicU64::new(0));
        let hub = Hub::spawn(
            CountingService {
                uploads: uploads.clone(),
            },
            HubConfig::default(),
        );
        let mut client = ResilientClient::new(flaky_connector(&hub, 2), quick_policy());
        // The first two connections die on the first write; the third works.
        let reply = client.call(&query(3)).unwrap();
        match reply {
            Response::Search(r) => assert_eq!(r.matches[0].document_id, 3),
            other => panic!("unexpected reply {other:?}"),
        }
        let stats = client.stats();
        assert_eq!(stats.link_faults, 2);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.reconnects, 2);
        assert_eq!(stats.successes, 1);
        assert_eq!(
            stats.attempts,
            stats.successes + stats.sheds + stats.link_faults
        );
        // A second call reuses the healthy connection: no new attempts lost.
        client.call(&query(5)).unwrap();
        assert_eq!(client.stats().link_faults, 2);
        drop(client);
        drop(hub.shutdown());
    }

    #[test]
    fn non_idempotent_requests_fail_retry_unsafe_without_opt_in() {
        let uploads = Arc::new(AtomicU64::new(0));
        let hub = Hub::spawn(
            CountingService {
                uploads: uploads.clone(),
            },
            HubConfig::default(),
        );
        let mut client = ResilientClient::new(flaky_connector(&hub, 1), quick_policy());
        let err = client.call(&upload()).unwrap_err();
        match err {
            ClientError::RetryUnsafe { op, .. } => assert_eq!(op, "Upload"),
            other => panic!("expected RetryUnsafe, got {other}"),
        }
        assert_eq!(client.stats().unsafe_aborts, 1);
        assert_eq!(client.stats().retries, 0, "never silently resubmitted");
        // The same client still works for later requests (fresh connection).
        assert!(matches!(client.call(&query(1)), Ok(Response::Search(_))));
        drop(client);
        drop(hub.shutdown());
        assert_eq!(
            uploads.load(Ordering::SeqCst),
            0,
            "the killed-at-byte-0 upload never reached the server"
        );
    }

    #[test]
    fn opt_in_retries_non_idempotent_requests() {
        let uploads = Arc::new(AtomicU64::new(0));
        let hub = Hub::spawn(
            CountingService {
                uploads: uploads.clone(),
            },
            HubConfig::default(),
        );
        let policy = RetryPolicy {
            retry_non_idempotent: true,
            ..quick_policy()
        };
        let mut client = ResilientClient::new(flaky_connector(&hub, 1), policy);
        let reply = client.call(&upload()).unwrap();
        assert!(matches!(reply, Response::Uploaded { .. }));
        assert_eq!(client.stats().retries, 1);
        drop(client);
        drop(hub.shutdown());
        assert_eq!(uploads.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn request_ids_stay_unique_across_reconnects() {
        let uploads = Arc::new(AtomicU64::new(0));
        let hub = Hub::spawn(CountingService { uploads }, HubConfig::default());
        let mut client = ResilientClient::new(flaky_connector(&hub, 1), quick_policy())
            .with_first_request_id(100);
        client.call(&query(1)).unwrap();
        client.call(&query(2)).unwrap();
        // Attempt 1 consumed id 100 on the dead link; the retry and the
        // second request used fresh ids on the replacement connection.
        assert_eq!(client.next_request_id(), 103);
        let wire = client.wire_stats();
        assert_eq!(wire.frames_sent, 3, "three submissions across two links");
        assert_eq!(wire.frames_received, 2);
        drop(client);
        drop(hub.shutdown());
    }

    #[test]
    fn connect_honors_the_request_deadline_and_reuses_the_late_dial() {
        let uploads = Arc::new(AtomicU64::new(0));
        let hub = Hub::spawn(CountingService { uploads }, HubConfig::default());
        let dialer = hub.memory_dialer();
        let dials = Arc::new(AtomicU64::new(0));
        let dials_seen = dials.clone();
        let connector: Connector = Box::new(move |_ordinal| {
            dials_seen.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(300));
            let (reader, writer) = dialer.connect().split();
            Ok((Box::new(reader), Box::new(writer)))
        });
        let policy = RetryPolicy {
            max_attempts: 1,
            request_deadline: Duration::from_millis(50),
            ..quick_policy()
        };
        let mut client = ResilientClient::new(connector, policy);
        let started = Instant::now();
        let err = client.call(&query(1)).unwrap_err();
        assert!(matches!(err, ClientError::TimedOut { .. }), "got {err}");
        assert!(
            started.elapsed() < Duration::from_millis(250),
            "slow connect pinned the request past its deadline: {:?}",
            started.elapsed()
        );
        let stats = client.stats();
        assert_eq!(
            stats.link_faults, 1,
            "a timed-out connect is a lost attempt"
        );
        assert_eq!(
            stats.attempts,
            stats.successes + stats.sheds + stats.link_faults
        );
        // Wait out the dial: the next call consumes the in-flight result
        // instead of dialing a second time.
        std::thread::sleep(Duration::from_millis(350));
        assert!(matches!(client.call(&query(3)), Ok(Response::Search(_))));
        assert_eq!(dials.load(Ordering::SeqCst), 1, "the late dial was reused");
        drop(client);
        drop(hub.shutdown());
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let uploads = Arc::new(AtomicU64::new(0));
            let hub = Hub::spawn(CountingService { uploads }, HubConfig::default());
            let policy = RetryPolicy {
                jitter_per_mille: 500,
                jitter_seed: seed,
                ..quick_policy()
            };
            let mut client = ResilientClient::new(flaky_connector(&hub, 3), policy);
            client.call(&query(2)).unwrap();
            let stats = client.stats();
            drop(client);
            drop(hub.shutdown());
            stats
        };
        let a = run(7);
        let b = run(7);
        assert!(a.backoff_waits >= 3, "three dead links force three sleeps");
        assert_eq!(a.backoff_ns, b.backoff_ns, "same seed replays same sleeps");
        assert_eq!(a, b, "jittered runs stay fully reproducible per seed");
        let c = run(8);
        assert_ne!(
            a.backoff_ns, c.backoff_ns,
            "a different seed draws different jitter"
        );
    }
}
