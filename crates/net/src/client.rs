//! A pipelined envelope client over any [`LinkReader`]/[`LinkWriter`] pair —
//! the socket-side twin of `mkse_protocol::Client`: submit many requests,
//! flush once, correlate replies by request id out of order.

use crate::frame::FrameBuffer;
use crate::link::{LinkReader, LinkWriter, MemoryLink};
use mkse_protocol::wire::{decode_response, encode_request, CodecError};
use mkse_protocol::{Request, Response, TransportError, WireStats};
use std::collections::BTreeMap;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Failures a [`NetClient`] can observe. Server-side rejections arrive as
/// ordinary [`Response::Error`] replies, not as this type.
#[derive(Debug)]
pub enum ClientError {
    /// The link failed (connect, send, or receive).
    Io(io::Error),
    /// A reply frame did not decode.
    Codec(CodecError),
    /// The client-side frame limit rejected a reply frame.
    Transport(TransportError),
    /// No reply for this request id within the wait deadline.
    TimedOut {
        /// The request that went unanswered.
        request_id: u64,
    },
    /// The server closed the connection before answering this request id.
    Disconnected {
        /// The request that went unanswered.
        request_id: u64,
    },
    /// A non-idempotent request (upload, cache admin, restore) failed
    /// mid-flight: the link died after the request may have reached the
    /// server, so resubmitting could execute it twice. The resilient client
    /// refuses to auto-retry and surfaces this instead; the caller can opt
    /// into at-least-once via `RetryPolicy::retry_non_idempotent`.
    RetryUnsafe {
        /// The envelope name of the operation that cannot be safely retried.
        op: &'static str,
        /// The underlying failure of the last attempt.
        cause: Box<ClientError>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "link failure: {e}"),
            ClientError::Codec(e) => write!(f, "reply frame did not decode: {e}"),
            ClientError::Transport(e) => write!(f, "reply frame rejected: {e}"),
            ClientError::TimedOut { request_id } => {
                write!(f, "no reply for request #{request_id} before the deadline")
            }
            ClientError::Disconnected { request_id } => {
                write!(
                    f,
                    "connection closed before request #{request_id} was answered"
                )
            }
            ClientError::RetryUnsafe { op, cause } => {
                write!(
                    f,
                    "{op} failed mid-flight and is not idempotent — not retried \
                     (the server may or may not have executed it): {cause}"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Pipelined client over a split link. Request ids are assigned from a
/// configurable base ([`NetClient::with_first_request_id`]) so several clients
/// of one hub can keep their ids globally unique — the journal-replay
/// equivalence oracle correlates on exactly that.
pub struct NetClient {
    reader: Box<dyn LinkReader>,
    writer: Box<dyn LinkWriter>,
    frames: FrameBuffer,
    outbox: Vec<u8>,
    inbox: BTreeMap<u64, Response>,
    next_id: u64,
    stats: WireStats,
    eof: bool,
}

impl NetClient {
    /// Receive poll tick while waiting for replies.
    const POLL: Duration = Duration::from_millis(2);

    /// Connect over TCP.
    pub fn connect_tcp<A: ToSocketAddrs>(addr: A) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(Self::from_parts(Box::new(read_half), Box::new(stream)))
    }

    /// Wrap the client end of an in-process link.
    pub fn from_memory(link: MemoryLink) -> NetClient {
        let (reader, writer) = link.split();
        Self::from_parts(Box::new(reader), Box::new(writer))
    }

    /// Wrap an arbitrary split link.
    pub fn from_parts(mut reader: Box<dyn LinkReader>, writer: Box<dyn LinkWriter>) -> NetClient {
        let _ = reader.set_recv_timeout(Self::POLL);
        NetClient {
            reader,
            writer,
            frames: FrameBuffer::new(u32::MAX as u64),
            outbox: Vec::new(),
            inbox: BTreeMap::new(),
            next_id: 1,
            stats: WireStats::default(),
            eof: false,
        }
    }

    /// Start request-id assignment at `id` (builder-style).
    pub fn with_first_request_id(mut self, id: u64) -> NetClient {
        self.next_id = id;
        self
    }

    /// The id the next [`NetClient::submit`] will use.
    pub fn next_request_id(&self) -> u64 {
        self.next_id
    }

    /// Frames and framed bytes this client has moved.
    pub fn wire_stats(&self) -> WireStats {
        self.stats
    }

    /// Encode `request` into the outbox (nothing is sent until
    /// [`NetClient::flush`]); returns its request id.
    pub fn submit(&mut self, request: &Request) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let frame = encode_request(id, request);
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += frame.len() as u64;
        self.outbox.extend_from_slice(&frame);
        id
    }

    /// Ship every submitted frame in one write.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        if self.outbox.is_empty() {
            return Ok(());
        }
        let wire = std::mem::take(&mut self.outbox);
        self.writer.send_all(&wire).map_err(ClientError::Io)
    }

    /// One receive attempt: pull available bytes, decode complete reply
    /// frames into the inbox. Returns `Ok(true)` if bytes arrived.
    fn ingest_available(&mut self) -> Result<bool, ClientError> {
        let mut buf = [0u8; 16 * 1024];
        match self.reader.recv(&mut buf) {
            Ok(0) => {
                self.eof = true;
                Ok(false)
            }
            Ok(n) => {
                self.frames
                    .extend(&buf[..n])
                    .map_err(ClientError::Transport)?;
                loop {
                    match self.frames.pop() {
                        Ok(Some(payload)) => {
                            self.stats.frames_received += 1;
                            self.stats.bytes_received += payload.len() as u64 + 4;
                            let (id, response) =
                                decode_response(&payload).map_err(ClientError::Codec)?;
                            self.inbox.insert(id, response);
                        }
                        Ok(None) => break,
                        Err(e) => return Err(ClientError::Transport(e)),
                    }
                }
                Ok(true)
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(false)
            }
            Err(e) => Err(ClientError::Io(e)),
        }
    }

    /// Ship raw pre-framed bytes immediately, bypassing the envelope codec —
    /// for harnesses that need to send hand-built (or hostile) frames.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.writer.send_all(bytes).map_err(ClientError::Io)
    }

    /// Take a reply already in the inbox, without touching the link.
    pub fn try_take(&mut self, request_id: u64) -> Option<Response> {
        self.inbox.remove(&request_id)
    }

    /// Block until the reply for `request_id` arrives (other replies are
    /// ingested into the inbox on the way).
    ///
    /// The wait parks instead of polling: the link's receive timeout is
    /// stretched to the remaining deadline, so the thread sleeps on the
    /// pipe's condvar (memory links) or in the kernel (TCP) until bytes
    /// actually arrive — no CPU is burned spinning. Total blocked time is
    /// surfaced as [`WireStats::wait_ns`].
    pub fn wait_take(
        &mut self,
        request_id: u64,
        timeout: Duration,
    ) -> Result<Response, ClientError> {
        let started = Instant::now();
        let deadline = started + timeout;
        let result = loop {
            if let Some(response) = self.inbox.remove(&request_id) {
                break Ok(response);
            }
            if self.eof {
                break Err(ClientError::Disconnected { request_id });
            }
            let now = Instant::now();
            if now >= deadline {
                break Err(ClientError::TimedOut { request_id });
            }
            let _ = self.reader.set_recv_timeout(deadline - now);
            match self.ingest_available() {
                Ok(_) => {}
                Err(e) => {
                    let _ = self.reader.set_recv_timeout(Self::POLL);
                    self.stats.wait_ns += started.elapsed().as_nanos() as u64;
                    return Err(e);
                }
            }
        };
        let _ = self.reader.set_recv_timeout(Self::POLL);
        self.stats.wait_ns += started.elapsed().as_nanos() as u64;
        result
    }

    /// Submit + flush + wait: one blocking round trip.
    pub fn call(&mut self, request: &Request, timeout: Duration) -> Result<Response, ClientError> {
        let id = self.submit(request);
        self.flush()?;
        self.wait_take(id, timeout)
    }
}
