//! Incremental reassembly of length-prefixed frames from an arbitrarily
//! fragmented byte stream.
//!
//! A TCP read returns whatever bytes happen to be in the socket buffer: a
//! frame can arrive whole, split mid-payload, or split inside its 4-byte
//! length prefix. [`FrameBuffer`] accumulates those fragments and yields
//! exactly the frame payloads the peer encoded, in order — the torn-frame
//! property test below proves reassembly is fragmentation-invariant.
//!
//! The buffer also enforces the transport's frame-size limit *early*: as soon
//! as the front frame's length prefix is complete, a declaration above the
//! limit fails with [`TransportError::FrameTooLarge`] — before any of the
//! oversized payload is buffered, so a hostile peer cannot balloon server
//! memory by declaring a huge frame.

use mkse_protocol::TransportError;

/// Reassembles length-prefixed frames (`u32` little-endian length, then that
/// many payload bytes — the `mkse_protocol::wire` framing) from stream
/// fragments of any size.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    max_frame_bytes: u64,
}

impl FrameBuffer {
    /// An empty buffer enforcing `max_frame_bytes` on every declared frame
    /// length.
    pub fn new(max_frame_bytes: u64) -> Self {
        FrameBuffer {
            buf: Vec::new(),
            max_frame_bytes,
        }
    }

    /// Declared payload length of the front frame, once its prefix is
    /// complete. Fails if the declaration exceeds the limit.
    fn front_len(&self) -> Result<Option<usize>, TransportError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let declared = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as u64;
        if declared > self.max_frame_bytes {
            return Err(TransportError::FrameTooLarge {
                declared,
                max: self.max_frame_bytes,
            });
        }
        Ok(Some(declared as usize))
    }

    /// Append raw stream bytes. Fails as soon as the front frame's length
    /// prefix declares more than the limit.
    pub fn extend(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        self.buf.extend_from_slice(bytes);
        self.front_len().map(|_| ())
    }

    /// Pop the next complete frame payload, or `Ok(None)` if the stream has
    /// not delivered one yet. (The limit is re-checked here: a later frame
    /// becomes the front frame only after its predecessor pops.)
    pub fn pop(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        let Some(len) = self.front_len()? else {
            return Ok(None);
        };
        if self.buf.len() - 4 < len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet popped (partial frames included).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkse_protocol::wire::{decode_request, encode_request};
    use mkse_protocol::Request;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = (payload.len() as u32).to_le_bytes().to_vec();
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn whole_frames_pop_in_order() {
        let mut fb = FrameBuffer::new(1 << 20);
        let wire = [frame(b"alpha"), frame(b""), frame(b"beta")].concat();
        fb.extend(&wire).unwrap();
        assert_eq!(fb.pop().unwrap().unwrap(), b"alpha");
        assert_eq!(fb.pop().unwrap().unwrap(), b"");
        assert_eq!(fb.pop().unwrap().unwrap(), b"beta");
        assert_eq!(fb.pop().unwrap(), None);
        assert_eq!(fb.pending_bytes(), 0);
    }

    #[test]
    fn oversize_declaration_is_rejected_from_the_prefix_alone() {
        let mut fb = FrameBuffer::new(8);
        // Feed only the 4 prefix bytes of a 1 MiB declaration: the reject
        // fires before any payload byte exists to buffer.
        let declared = (1u32 << 20).to_le_bytes();
        assert_eq!(
            fb.extend(&declared),
            Err(TransportError::FrameTooLarge {
                declared: 1 << 20,
                max: 8
            })
        );
        // A frame at the limit is fine; one past it is not.
        let mut fb = FrameBuffer::new(5);
        fb.extend(&frame(b"12345")).unwrap();
        assert_eq!(fb.pop().unwrap().unwrap(), b"12345");
        assert!(fb.extend(&frame(b"123456")).is_err());
    }

    #[test]
    fn oversize_second_frame_is_caught_when_it_reaches_the_front() {
        let mut fb = FrameBuffer::new(8);
        // Both frames arrive in one read: the front frame is legal, the one
        // behind it oversized. extend() only sees the front prefix, so the
        // reject fires at the pop that would expose the second frame.
        let wire = [frame(b"ok"), frame(b"123456789")].concat();
        fb.extend(&wire).unwrap();
        assert_eq!(fb.pop().unwrap().unwrap(), b"ok");
        assert!(fb.pop().is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Torn-frame robustness: any fragmentation of the byte stream —
        /// 1-byte reads, splits inside the length prefix, several frames per
        /// read — reassembles to exactly the payload sequence that whole-frame
        /// delivery yields, and real protocol frames decode identically.
        #[test]
        fn prop_reassembly_is_fragmentation_invariant(seed in 0u64..1 << 48) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut wire = Vec::new();
            let mut expected = Vec::new();
            for i in 0..rng.gen_range(1usize..8) {
                // A mix of raw payloads and genuine protocol request frames.
                let payload = if i % 2 == 0 {
                    let body: Vec<u8> = (0..rng.gen_range(0usize..64))
                        .map(|_| rng.gen_range(0u8..=255))
                        .collect();
                    let full = encode_request(rng.gen_range(0u64..u64::MAX),
                                              &Request::RestoreIndex(body));
                    full[4..].to_vec()
                } else {
                    (0..rng.gen_range(0usize..32))
                        .map(|_| rng.gen_range(0u8..=255))
                        .collect()
                };
                wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                wire.extend_from_slice(&payload);
                expected.push(payload);
            }

            // Reference: the whole wire in one read.
            let mut whole = FrameBuffer::new(u32::MAX as u64);
            whole.extend(&wire).unwrap();
            let mut reference = Vec::new();
            while let Some(p) = whole.pop().unwrap() {
                reference.push(p);
            }
            prop_assert_eq!(&reference, &expected);

            // Fragmented delivery: random cut points, 1-byte reads included.
            let mut torn = FrameBuffer::new(u32::MAX as u64);
            let mut reassembled = Vec::new();
            let mut offset = 0;
            while offset < wire.len() {
                let take = rng.gen_range(1usize..=(wire.len() - offset).min(7));
                torn.extend(&wire[offset..offset + take]).unwrap();
                while let Some(p) = torn.pop().unwrap() {
                    reassembled.push(p);
                }
                offset += take;
            }
            prop_assert_eq!(&reassembled, &expected);
            prop_assert_eq!(torn.pending_bytes(), 0);

            // Protocol frames survive reassembly byte-identically: every
            // even-indexed payload decodes to the request that was encoded.
            for payload in reassembled.iter().step_by(2) {
                prop_assert!(decode_request(payload).is_ok());
            }
        }
    }
}
