//! Deterministic link-fault injection: [`FaultyLink`] wraps any
//! [`LinkReader`]/[`LinkWriter`] pair (TCP or `MemoryLink`) and executes a
//! seeded [`FaultPlan`] — kill-after-N-bytes, torn writes, injected delays,
//! corrupted bytes — so chaos runs are replayable from their seed.
//!
//! ## Determinism
//!
//! Each half owns its own xoshiro stream (derived from [`FaultPlan::seed`]
//! via SplitMix64, like `StdRng::seed_from_u64`), and draws from it **once
//! per byte-moving operation** — never per poll tick, so `WouldBlock`
//! timeouts (whose count is timing-dependent) cannot shift the schedule.
//! Driving a half through the same operation sequence therefore reproduces
//! the same fault schedule, which [`FaultHandle::log`] records and
//! `tests/net_chaos.rs` asserts.
//!
//! ## What faults where
//!
//! Corruption and torn writes apply only to the **write** path. The threat
//! model is an honest-but-curious server over a faulty network: a corrupted
//! *request* surfaces as a decode fault (or, rarely, a different valid
//! request) on the server — either way the journal records what actually
//! executed, so the equivalence oracle still holds. Corrupting the *read*
//! path instead could silently rewrite a reply into different valid bytes
//! and break the byte-identical oracle without modeling anything a real
//! deployment (checksummed, authenticated transport) would permit. The read
//! path gets delays and the shared link kill only.

use crate::link::{LinkReader, LinkWriter};
use mkse_core::telemetry::{Counter, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A seeded, deterministic fault schedule for one wrapped link. Rates are
/// per-mille (0 = never, 1000 = every operation); all default to zero, so
/// `FaultPlan::healthy(seed)` wraps a link without perturbing it.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Seed of the plan's xoshiro streams; the same seed over the same
    /// operation sequence reproduces the same schedule.
    pub seed: u64,
    /// Kill the whole link once this many bytes were written through it:
    /// the killing write delivers a truncated prefix, then both halves fail
    /// (`BrokenPipe` on writes, EOF on reads) forever.
    pub kill_after_bytes: Option<u64>,
    /// Per-mille chance a write is torn: a random strict prefix is
    /// delivered, then the link dies as above.
    pub torn_write_per_mille: u32,
    /// Per-mille chance a write has one random bit flipped before delivery
    /// (the full frame still arrives — corruption, not truncation).
    pub corrupt_write_per_mille: u32,
    /// Per-mille chance an operation is delayed before executing.
    pub delay_per_mille: u32,
    /// Upper bound on one injected delay, in microseconds.
    pub max_delay_micros: u64,
}

impl FaultPlan {
    /// A plan that injects nothing — wrapping becomes a transparent pass.
    pub fn healthy(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            kill_after_bytes: None,
            torn_write_per_mille: 0,
            corrupt_write_per_mille: 0,
            delay_per_mille: 0,
            max_delay_micros: 0,
        }
    }
}

/// One injected fault, in the order it fired. Offsets are absolute byte
/// positions in the half's stream, so two logs are comparable across runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// An operation was delayed by this many microseconds.
    Delay {
        /// Injected sleep, µs.
        micros: u64,
    },
    /// A write delivered only a prefix, then the link died.
    TornWrite {
        /// Bytes the caller asked to write.
        requested: u64,
        /// Bytes actually delivered before the kill.
        delivered: u64,
    },
    /// One bit of a write was flipped before delivery.
    CorruptBit {
        /// Absolute offset (in the write stream) of the flipped byte.
        offset: u64,
        /// Which bit (0–7) was flipped.
        bit: u8,
    },
    /// The link reached its byte budget and died.
    Killed {
        /// Total bytes delivered by the write half when the link died.
        after_bytes: u64,
    },
}

/// State both halves share: the kill switch, byte odometer, and fault log.
struct FaultShared {
    dead: AtomicBool,
    bytes_written: AtomicU64,
    faults: AtomicU64,
    log: Mutex<Vec<FaultEvent>>,
    telemetry: Option<Telemetry>,
}

impl FaultShared {
    fn record(&self, event: FaultEvent) {
        self.faults.fetch_add(1, Ordering::Relaxed);
        if let Some(tel) = &self.telemetry {
            tel.add(Counter::FaultsInjected, 1);
        }
        self.log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event);
    }
}

/// Observer handle for one wrapped link: fault count and replayable log.
#[derive(Clone)]
pub struct FaultHandle {
    shared: Arc<FaultShared>,
}

impl FaultHandle {
    /// Faults injected so far (all kinds).
    pub fn faults(&self) -> u64 {
        self.shared.faults.load(Ordering::Relaxed)
    }

    /// Whether the link was killed (budget, torn write).
    pub fn is_dead(&self) -> bool {
        self.shared.dead.load(Ordering::Relaxed)
    }

    /// The fault schedule as it actually fired, for replay comparison.
    pub fn log(&self) -> Vec<FaultEvent> {
        self.shared
            .log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Constructor namespace: [`FaultyLink::wrap`] produces the faulty halves.
pub struct FaultyLink;

impl FaultyLink {
    /// Wrap a split link in a fault plan. Returns the faulty halves plus the
    /// [`FaultHandle`] observing them.
    pub fn wrap(
        reader: Box<dyn LinkReader>,
        writer: Box<dyn LinkWriter>,
        plan: FaultPlan,
    ) -> (FaultyReader, FaultyWriter, FaultHandle) {
        Self::wrap_with_telemetry(reader, writer, plan, None)
    }

    /// Like [`FaultyLink::wrap`], also counting every injected fault into
    /// `telemetry` as [`Counter::FaultsInjected`].
    pub fn wrap_with_telemetry(
        reader: Box<dyn LinkReader>,
        writer: Box<dyn LinkWriter>,
        plan: FaultPlan,
        telemetry: Option<Telemetry>,
    ) -> (FaultyReader, FaultyWriter, FaultHandle) {
        let shared = Arc::new(FaultShared {
            dead: AtomicBool::new(false),
            bytes_written: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
            telemetry,
        });
        let handle = FaultHandle {
            shared: shared.clone(),
        };
        // Distinct streams per half: the halves live on different threads,
        // so sharing one stream would make the schedule depend on thread
        // interleaving. The write stream uses the seed as-is; the read
        // stream is domain-separated by a fixed constant.
        let writer = FaultyWriter {
            inner: writer,
            plan,
            rng: StdRng::seed_from_u64(plan.seed),
            shared: shared.clone(),
        };
        let reader = FaultyReader {
            inner: reader,
            plan,
            rng: StdRng::seed_from_u64(plan.seed ^ 0x9e37_79b9_7f4a_7c15),
            shared,
        };
        (reader, writer, handle)
    }
}

fn maybe_delay(plan: &FaultPlan, rng: &mut StdRng, shared: &FaultShared) {
    if plan.delay_per_mille > 0 && rng.gen_range(0u32..1000) < plan.delay_per_mille {
        let micros = rng.gen_range(0u64..=plan.max_delay_micros.max(1));
        shared.record(FaultEvent::Delay { micros });
        std::thread::sleep(Duration::from_micros(micros));
    }
}

/// Write half with the plan applied: delays, bit flips, torn writes, kills.
pub struct FaultyWriter {
    inner: Box<dyn LinkWriter>,
    plan: FaultPlan,
    rng: StdRng,
    shared: Arc<FaultShared>,
}

impl LinkWriter for FaultyWriter {
    fn send_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        if self.shared.dead.load(Ordering::Relaxed) {
            return Err(io::ErrorKind::BrokenPipe.into());
        }
        maybe_delay(&self.plan, &mut self.rng, &self.shared);

        let written_before = self.shared.bytes_written.load(Ordering::Relaxed);

        // Byte budget: the killing write delivers only what the budget
        // allows, then the link dies in both directions.
        if let Some(budget) = self.plan.kill_after_bytes {
            if written_before + bytes.len() as u64 > budget {
                let room = budget.saturating_sub(written_before) as usize;
                if room > 0 {
                    let _ = self.inner.send_all(&bytes[..room]);
                }
                let after_bytes = written_before + room as u64;
                self.shared
                    .bytes_written
                    .store(after_bytes, Ordering::Relaxed);
                self.shared.dead.store(true, Ordering::Relaxed);
                self.shared.record(FaultEvent::Killed { after_bytes });
                return Err(io::ErrorKind::BrokenPipe.into());
            }
        }

        // Torn write: a random strict prefix lands, then the link dies.
        if self.plan.torn_write_per_mille > 0
            && self.rng.gen_range(0u32..1000) < self.plan.torn_write_per_mille
        {
            let delivered = self.rng.gen_range(0usize..bytes.len().max(1));
            if delivered > 0 {
                let _ = self.inner.send_all(&bytes[..delivered]);
            }
            let after_bytes = written_before + delivered as u64;
            self.shared
                .bytes_written
                .store(after_bytes, Ordering::Relaxed);
            self.shared.dead.store(true, Ordering::Relaxed);
            self.shared.record(FaultEvent::TornWrite {
                requested: bytes.len() as u64,
                delivered: delivered as u64,
            });
            return Err(io::ErrorKind::BrokenPipe.into());
        }

        // Bit corruption: the full write lands, one bit flipped.
        if !bytes.is_empty()
            && self.plan.corrupt_write_per_mille > 0
            && self.rng.gen_range(0u32..1000) < self.plan.corrupt_write_per_mille
        {
            let at = self.rng.gen_range(0usize..bytes.len());
            let bit = self.rng.gen_range(0u8..8);
            let mut corrupted = bytes.to_vec();
            corrupted[at] ^= 1 << bit;
            self.shared.record(FaultEvent::CorruptBit {
                offset: written_before + at as u64,
                bit,
            });
            let result = self.inner.send_all(&corrupted);
            self.shared
                .bytes_written
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            return result;
        }

        let result = self.inner.send_all(bytes);
        self.shared
            .bytes_written
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        result
    }
}

/// Read half with the plan applied: delays plus the shared kill (reported as
/// EOF, like a peer reset). Never corrupts delivered bytes — see the module
/// docs for why.
pub struct FaultyReader {
    inner: Box<dyn LinkReader>,
    plan: FaultPlan,
    rng: StdRng,
    shared: Arc<FaultShared>,
}

impl LinkReader for FaultyReader {
    fn recv(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.shared.dead.load(Ordering::Relaxed) {
            return Ok(0);
        }
        match self.inner.recv(buf) {
            // Draw only on byte-delivering reads: poll-tick timeouts are
            // timing-dependent and must not advance the schedule.
            Ok(n) if n > 0 => {
                maybe_delay(&self.plan, &mut self.rng, &self.shared);
                Ok(n)
            }
            other => other,
        }
    }

    fn set_recv_timeout(&mut self, timeout: Duration) -> io::Result<()> {
        self.inner.set_recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::memory_duplex;

    /// Sink writer capturing everything delivered through the fault layer.
    struct Sink(Arc<Mutex<Vec<u8>>>);

    impl LinkWriter for Sink {
        fn send_all(&mut self, bytes: &[u8]) -> io::Result<()> {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend_from_slice(bytes);
            Ok(())
        }
    }

    fn faulty_sink(plan: FaultPlan) -> (FaultyWriter, FaultHandle, Arc<Mutex<Vec<u8>>>) {
        let delivered = Arc::new(Mutex::new(Vec::new()));
        let (client, _server) = memory_duplex();
        let (reader, _writer) = client.split();
        let (_r, w, handle) =
            FaultyLink::wrap(Box::new(reader), Box::new(Sink(delivered.clone())), plan);
        (w, handle, delivered)
    }

    #[test]
    fn healthy_plan_is_a_transparent_pass() {
        let (mut w, handle, delivered) = faulty_sink(FaultPlan::healthy(7));
        for chunk in [&b"alpha"[..], &b"beta"[..], &b"gamma"[..]] {
            w.send_all(chunk).unwrap();
        }
        assert_eq!(&*delivered.lock().unwrap(), b"alphabetagamma");
        assert_eq!(handle.faults(), 0);
        assert!(!handle.is_dead());
    }

    #[test]
    fn same_seed_same_op_sequence_reproduces_the_same_schedule() {
        let plan = FaultPlan {
            torn_write_per_mille: 120,
            corrupt_write_per_mille: 150,
            delay_per_mille: 100,
            max_delay_micros: 5,
            ..FaultPlan::healthy(20812)
        };
        let run = |plan: FaultPlan| {
            let (mut w, handle, delivered) = faulty_sink(plan);
            for i in 0..200u32 {
                let chunk = vec![i as u8; 32 + (i as usize % 17)];
                if w.send_all(&chunk).is_err() {
                    break;
                }
            }
            let bytes = delivered.lock().unwrap().clone();
            (handle.log(), bytes)
        };
        let (log_a, bytes_a) = run(plan);
        let (log_b, bytes_b) = run(plan);
        assert!(!log_a.is_empty(), "the plan must actually fire");
        assert_eq!(log_a, log_b, "same seed, same ops, same schedule");
        assert_eq!(bytes_a, bytes_b, "same delivered bytes too");
        let (log_c, _) = run(FaultPlan { seed: 1, ..plan });
        assert_ne!(log_a, log_c, "a different seed yields a different schedule");
    }

    #[test]
    fn byte_budget_kills_the_link_with_a_truncated_tail() {
        let (mut w, handle, delivered) = faulty_sink(FaultPlan {
            kill_after_bytes: Some(10),
            ..FaultPlan::healthy(3)
        });
        w.send_all(b"eightby8").unwrap();
        let err = w.send_all(b"overflow").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(handle.is_dead());
        // 8 clean bytes plus the 2 the budget allowed of the killing write.
        assert_eq!(delivered.lock().unwrap().len(), 10);
        assert_eq!(handle.log(), vec![FaultEvent::Killed { after_bytes: 10 }]);
        // Dead forever: later writes fail without delivering anything.
        assert_eq!(
            w.send_all(b"more").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
        assert_eq!(delivered.lock().unwrap().len(), 10);
    }

    #[test]
    fn torn_write_delivers_a_strict_prefix_then_dies() {
        // With a certain tear (1000‰) the very first write is torn.
        let (mut w, handle, delivered) = faulty_sink(FaultPlan {
            torn_write_per_mille: 1000,
            ..FaultPlan::healthy(9)
        });
        let err = w.send_all(&[0xab; 64]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        let log = handle.log();
        assert_eq!(log.len(), 1);
        match &log[0] {
            FaultEvent::TornWrite {
                requested,
                delivered: sent,
            } => {
                assert_eq!(*requested, 64);
                assert!(*sent < 64, "a torn write is a strict prefix");
                assert_eq!(delivered.lock().unwrap().len() as u64, *sent);
            }
            other => panic!("expected TornWrite, got {other:?}"),
        }
    }

    #[test]
    fn corruption_flips_exactly_one_bit_and_keeps_the_length() {
        let (mut w, handle, delivered) = faulty_sink(FaultPlan {
            corrupt_write_per_mille: 1000,
            ..FaultPlan::healthy(5)
        });
        let original = vec![0u8; 256];
        w.send_all(&original).unwrap();
        let delivered = delivered.lock().unwrap().clone();
        assert_eq!(delivered.len(), original.len());
        let flipped: u32 = delivered
            .iter()
            .zip(&original)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit differs");
        assert_eq!(handle.faults(), 1);
        assert!(matches!(handle.log()[0], FaultEvent::CorruptBit { .. }));
        assert!(!handle.is_dead(), "corruption does not kill the link");
    }

    #[test]
    fn dead_link_reads_as_eof_and_reader_passes_bytes_through_unchanged() {
        let (client, server) = memory_duplex();
        let (sr, mut sw) = server.split();
        drop(sr);
        let (reader, writer) = client.split();
        let (mut r, _w, handle) = FaultyLink::wrap(
            Box::new(reader),
            Box::new(writer),
            FaultPlan {
                kill_after_bytes: Some(0),
                delay_per_mille: 1000,
                max_delay_micros: 1,
                ..FaultPlan::healthy(2)
            },
        );
        // Reader passes real bytes through unchanged (delays only).
        sw.send_all(b"payload").unwrap();
        let mut buf = [0u8; 16];
        let n = r.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], &b"payload"[..n]);
        // Kill the link via the write half's budget; reads turn into EOF
        // even though the pipe itself is still open.
        let (client2, _server2) = memory_duplex();
        let (_r2, w2) = client2.split();
        drop(w2);
        assert!(!handle.is_dead());
        let mut killer = FaultyWriter {
            inner: Box::new(Sink(Arc::new(Mutex::new(Vec::new())))),
            plan: FaultPlan {
                kill_after_bytes: Some(0),
                ..FaultPlan::healthy(2)
            },
            rng: StdRng::seed_from_u64(2),
            shared: r.shared.clone(),
        };
        assert!(killer.send_all(b"x").is_err());
        assert!(handle.is_dead());
        assert_eq!(r.recv(&mut buf).unwrap(), 0, "dead link reads as EOF");
    }
}
