//! Dense row-major `f64` matrices.

use crate::{LinalgError, LuDecomposition};
use rand::Rng;

/// A dense, row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Build a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Fill a matrix with uniform random entries in `[-1, 1)`.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Matrix { rows, cols, data }
    }

    /// Generate a random *invertible* `n × n` matrix (retrying until the determinant is
    /// comfortably away from zero). This is how the MRSE baseline generates its secret keys.
    pub fn random_invertible<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        loop {
            let m = Self::random(n, n, rng);
            if let Ok(lu) = LuDecomposition::new(&m) {
                if lu.determinant().abs() > 1e-9 {
                    return m;
                }
            }
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix × matrix product.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, other.cols),
                actual: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix × column-vector product.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, 1),
                actual: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            let row = self.row(i);
            *slot = row.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Transposed-matrix × column-vector product (`Mᵀ·v`) without materializing the transpose.
    pub fn transpose_matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.rows != v.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.rows, 1),
                actual: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            let row = self.row(i);
            for j in 0..self.cols {
                out[j] += row[j] * vi;
            }
        }
        Ok(out)
    }

    /// Invert a square matrix via LU decomposition.
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        LuDecomposition::new(self)?.inverse()
    }

    /// Maximum absolute difference between two matrices of equal shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// `true` if all entries differ from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_times_matrix_is_matrix() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let i3 = Matrix::identity(3);
        assert!(i3.matmul(&m).unwrap().approx_eq(&m, 1e-12));
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert!(c.approx_eq(&Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]), 1e-12));
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(a.matvec(&[1.0, 2.0]).is_err());
        assert!(a.transpose_matvec(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn matvec_known_value() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
    }

    #[test]
    fn transpose_matvec_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::random(5, 7, &mut rng);
        let v: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let fast = a.transpose_matvec(&v).unwrap();
        let slow = a.transpose().matvec(&v).unwrap();
        for (x, y) in fast.iter().zip(slow.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::random(4, 6, &mut rng);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn inverse_of_identity_is_identity() {
        let i = Matrix::identity(5);
        assert!(i.inverse().unwrap().approx_eq(&i, 1e-12));
    }

    #[test]
    fn random_invertible_times_inverse_is_identity() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1usize, 2, 3, 8, 20] {
            let m = Matrix::random_invertible(n, &mut rng);
            let inv = m.inverse().unwrap();
            let prod = m.matmul(&inv).unwrap();
            assert!(prod.approx_eq(&Matrix::identity(n), 1e-8), "n = {n}");
        }
    }

    #[test]
    fn singular_matrix_inverse_fails() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(m.inverse(), Err(LinalgError::Singular));
    }

    #[test]
    fn indexing_round_trip() {
        let mut m = Matrix::zeros(3, 4);
        m[(2, 1)] = 7.5;
        assert_eq!(m[(2, 1)], 7.5);
        assert_eq!(m.row(2), &[0.0, 7.5, 0.0, 0.0]);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.data().len(), 12);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn from_vec_validates_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_matmul_associative(seed in 0u64..u64::MAX) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::random(3, 4, &mut rng);
            let b = Matrix::random(4, 2, &mut rng);
            let c = Matrix::random(2, 5, &mut rng);
            let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
            let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
            prop_assert!(left.approx_eq(&right, 1e-9));
        }

        #[test]
        fn prop_inverse_round_trip(seed in 0u64..u64::MAX) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = Matrix::random_invertible(6, &mut rng);
            let inv = m.inverse().unwrap();
            prop_assert!(m.matmul(&inv).unwrap().approx_eq(&Matrix::identity(6), 1e-7));
            prop_assert!(inv.matmul(&m).unwrap().approx_eq(&Matrix::identity(6), 1e-7));
        }

        #[test]
        fn prop_transpose_distributes_over_product(seed in 0u64..u64::MAX) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::random(3, 4, &mut rng);
            let b = Matrix::random(4, 5, &mut rng);
            let left = a.matmul(&b).unwrap().transpose();
            let right = b.transpose().matmul(&a.transpose()).unwrap();
            prop_assert!(left.approx_eq(&right, 1e-10));
        }
    }
}
