//! Small helpers for dense `f64` vectors (the MRSE baseline works on dictionary-sized
//! index/query vectors and scores documents by inner products).

/// Inner (dot) product of two equal-length vectors.
///
/// Panics if the lengths differ — the MRSE code always works with dictionary-sized vectors,
/// so a mismatch is a programming error rather than a recoverable condition.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product of unequal lengths");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Element-wise addition.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// Element-wise subtraction.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Multiply every element by a scalar.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// Split a vector into two shares `(a', a'')` according to a random bit string, as the secure
/// kNN construction requires: where `split_bits[i]` is `true` the two shares both receive the
/// original value; where it is `false` they receive two random values summing to the original.
///
/// (Cao et al. use the complementary convention for query vs. index vectors; the caller picks
/// which side gets the "split" treatment.)
pub fn split_vector<R: rand::Rng + ?Sized>(
    v: &[f64],
    split_bits: &[bool],
    rng: &mut R,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(v.len(), split_bits.len());
    let mut a = vec![0.0; v.len()];
    let mut b = vec![0.0; v.len()];
    for i in 0..v.len() {
        if split_bits[i] {
            a[i] = v[i];
            b[i] = v[i];
        } else {
            let r: f64 = rng.gen_range(-1.0..1.0);
            a[i] = v[i] / 2.0 + r;
            b[i] = v[i] / 2.0 - r;
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn dot_known_values() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "unequal lengths")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norm_of_unit_vectors() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn add_sub_scale() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[3.0, 4.0], &[1.0, 2.0]), vec![2.0, 2.0]);
        assert_eq!(scale(&[1.0, -2.0], 3.0), vec![3.0, -6.0]);
    }

    #[test]
    fn split_preserves_sum_on_random_positions() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = vec![1.0, 2.0, 3.0, 4.0];
        let bits = vec![false, true, false, true];
        let (a, b) = split_vector(&v, &bits, &mut rng);
        // Where the bit is false, shares sum to the original; where true, both equal it.
        assert!((a[0] + b[0] - 1.0).abs() < 1e-12);
        assert_eq!(a[1], 2.0);
        assert_eq!(b[1], 2.0);
        assert!((a[2] + b[2] - 3.0).abs() < 1e-12);
        assert_eq!(a[3], 4.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_split_inner_product_is_preserved(seed in 0u64..u64::MAX) {
            // The secure kNN core identity: if the *query* is split on complementary bits,
            // dot(p', q') + dot(p'', q'') == dot(p, q) when p is copied on split positions.
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 16;
            let p: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let q: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            // Index vector p: on bit=true positions both shares copy p; on bit=false they sum to p.
            let (p1, p2) = split_vector(&p, &bits, &mut rng);
            // Query vector q: complementary — on bit=true positions shares sum to q, else copy.
            let inv_bits: Vec<bool> = bits.iter().map(|b| !b).collect();
            let (q1, q2) = split_vector(&q, &inv_bits, &mut rng);
            // Each position contributes p_i·q_i regardless of which side carries the split,
            // so the combined share product equals the plain inner product.
            let combined = dot(&p1, &q1) + dot(&p2, &q2);
            prop_assert!((combined - dot(&p, &q)).abs() < 1e-9, "combined {} vs {}", combined, dot(&p, &q));
        }
    }
}
