//! # mkse-linalg — dense matrix algebra for the MRSE baseline
//!
//! The paper compares its bit-index scheme against Cao et al.'s MRSE ("Privacy-preserving
//! multi-keyword ranked search over encrypted cloud data", INFOCOM 2011), which encrypts
//! dictionary-sized index vectors by multiplying them with two secret invertible
//! `(n+2)×(n+2)` matrices (the *secure kNN* technique). Reproducing that baseline — and its
//! cost profile, which is exactly what §8.1 of the paper measures — needs a small dense
//! linear-algebra substrate: matrix multiplication, LU decomposition with partial pivoting,
//! inversion, and generation of random invertible matrices.
//!
//! Everything operates on `f64` and is deliberately straightforward (no blocking, no SIMD):
//! the *baseline's* cost being cubic/quadratic is the point of the comparison, and a heavily
//! optimised BLAS would only shift constants.

pub mod lu;
pub mod matrix;
pub mod vector;

pub use lu::LuDecomposition;
pub use matrix::Matrix;

/// Errors produced by the linear-algebra substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Matrix dimensions are incompatible for the requested operation.
    DimensionMismatch {
        expected: (usize, usize),
        actual: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) and cannot be inverted.
    Singular,
    /// The matrix is not square where a square matrix is required.
    NotSquare { rows: usize, cols: usize },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, actual } => write!(
                f,
                "dimension mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, actual.0, actual.1
            ),
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = LinalgError::DimensionMismatch {
            expected: (2, 3),
            actual: (3, 2),
        };
        assert!(format!("{e}").contains("2x3"));
        assert!(!format!("{}", LinalgError::Singular).is_empty());
        assert!(format!("{}", LinalgError::NotSquare { rows: 2, cols: 5 }).contains("2x5"));
    }
}
