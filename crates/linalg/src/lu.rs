//! LU decomposition with partial pivoting; used for inversion and determinants.

use crate::{LinalgError, Matrix};

/// LU decomposition with partial pivoting of a square matrix: `P·A = L·U`.
pub struct LuDecomposition {
    /// Combined storage: the strict lower triangle holds `L` (unit diagonal implied), the
    /// upper triangle (including the diagonal) holds `U`.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now sitting at position `i`.
    perm: Vec<usize>,
    /// Number of row swaps (for the determinant sign).
    swaps: usize,
}

impl LuDecomposition {
    /// Factorize a square matrix. Returns [`LinalgError::Singular`] if a pivot is (numerically)
    /// zero and [`LinalgError::NotSquare`] for non-square input.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        let (rows, cols) = a.shape();
        if rows != cols {
            return Err(LinalgError::NotSquare { rows, cols });
        }
        let n = rows;
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut swaps = 0usize;

        for col in 0..n {
            // Partial pivoting: find the largest |entry| in this column at or below the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for r in col + 1..n {
                let v = lu[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 {
                return Err(LinalgError::Singular);
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = lu[(col, j)];
                    lu[(col, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(col, pivot_row);
                swaps += 1;
            }
            let pivot = lu[(col, col)];
            for r in col + 1..n {
                let factor = lu[(r, col)] / pivot;
                lu[(r, col)] = factor;
                for j in col + 1..n {
                    let delta = factor * lu[(col, j)];
                    lu[(r, j)] -= delta;
                }
            }
        }
        Ok(LuDecomposition { lu, perm, swaps })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = if self.swaps.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Solve `A·x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                actual: (b.len(), 1),
            });
        }
        // Apply the permutation, then forward substitution (L has a unit diagonal).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[self.perm[i]];
            for (j, &yj) in y.iter().enumerate().take(i) {
                sum -= self.lu[(i, j)] * yj;
            }
            y[i] = sum;
        }
        // Backward substitution on U.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= self.lu[(i, j)] * xj;
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Inverse of the original matrix (column-by-column solves against the identity).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for col in 0..n {
            e[col] = 1.0;
            let x = self.solve(&e)?;
            for row in 0..n {
                inv[(row, col)] = x[row];
            }
            e[col] = 0.0;
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn determinant_known_values() {
        let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() - (-6.0)).abs() < 1e-10);

        let b = Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[0.0, 3.0, 0.0], &[0.0, 0.0, 4.0]]);
        assert!((LuDecomposition::new(&b).unwrap().determinant() - 24.0).abs() < 1e-10);
    }

    #[test]
    fn determinant_identity_is_one() {
        let lu = LuDecomposition::new(&Matrix::identity(7)).unwrap();
        assert!((lu.determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_known_system() {
        // x + 2y = 5 ; 3x - y = 1  =>  x = 1, y = 2
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, -1.0]]);
        let x = LuDecomposition::new(&a)
            .unwrap()
            .solve(&[5.0, 1.0])
            .unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // A zero in the top-left forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = LuDecomposition::new(&a)
            .unwrap()
            .solve(&[3.0, 4.0])
            .unwrap();
        assert!((x[0] - 4.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrices_are_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::Singular)
        ));
        let z = Matrix::zeros(3, 3);
        assert!(matches!(
            LuDecomposition::new(&z),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn solve_validates_rhs_length() {
        let a = Matrix::identity(3);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn inverse_matches_hand_computed() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
        let expected = Matrix::from_rows(&[&[0.6, -0.7], &[-0.2, 0.4]]);
        assert!(inv.approx_eq(&expected, 1e-10));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_solve_then_multiply_recovers_rhs(seed in 0u64..u64::MAX) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::random_invertible(8, &mut rng);
            let b: Vec<f64> = (0..8).map(|_| rng.gen_range(-10.0..10.0)).collect();
            let x = LuDecomposition::new(&a).unwrap().solve(&b).unwrap();
            let back = a.matvec(&x).unwrap();
            for (u, v) in back.iter().zip(b.iter()) {
                prop_assert!((u - v).abs() < 1e-6, "residual too large: {} vs {}", u, v);
            }
        }

        #[test]
        fn prop_determinant_of_product_is_product_of_determinants(seed in 0u64..u64::MAX) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::random_invertible(5, &mut rng);
            let b = Matrix::random_invertible(5, &mut rng);
            let da = LuDecomposition::new(&a).unwrap().determinant();
            let db = LuDecomposition::new(&b).unwrap().determinant();
            let dab = LuDecomposition::new(&a.matmul(&b).unwrap()).unwrap().determinant();
            prop_assert!((dab - da * db).abs() < 1e-6 * (1.0 + dab.abs()));
        }
    }
}
