//! The MRSE baseline of Cao et al. (INFOCOM 2011), built on the secure kNN technique.
//!
//! The scheme works over a fixed dictionary of `n` keywords:
//!
//! * **Key**: a random split bit-string `S` of length `n + 2` and two random invertible
//!   `(n+2)×(n+2)` matrices `M₁`, `M₂`.
//! * **Index** (per document): the binary indicator vector `p` over the dictionary is extended
//!   to `p̃ = (p, ε, 1)` with a small random `ε`; `p̃` is split into `(p̃', p̃'')` according to
//!   `S` (copied where `S_i = 1`, randomly shared where `S_i = 0`) and encrypted as
//!   `I = (M₁ᵀ p̃', M₂ᵀ p̃'')`.
//! * **Trapdoor** (per query): the indicator vector `q` is extended to `q̃ = (r·q, r, t)` with
//!   random `r > 0` and `t`; split with the *complementary* convention and encrypted as
//!   `T = (M₁⁻¹ q̃', M₂⁻¹ q̃'')`.
//! * **Scoring**: the server computes `I · T = p̃ · q̃ = r·(p·q + ε) + t`, which preserves the
//!   ranking by the number of matched keywords `p·q` (up to the `ε` noise).
//!
//! The cost profile is what the paper's §8.1 comparison measures: index generation and
//! trapdoor generation each cost two `(n+2)×(n+2)` matrix-vector products (`O(n²)`), and
//! scoring one document costs `O(n)` — versus `O(r)`-bit operations for MKSE.

use mkse_linalg::matrix::Matrix;
use mkse_linalg::vector::dot;
use mkse_textproc::dictionary::Dictionary;
use rand::Rng;

/// The MRSE secret key: split vector and the two invertible matrices (with their inverses
/// precomputed, since trapdoor generation needs them).
pub struct MrseKey {
    split: Vec<bool>,
    m1_t: Matrix,
    m2_t: Matrix,
    m1_inv: Matrix,
    m2_inv: Matrix,
}

impl MrseKey {
    /// Dimension of the extended vectors (`n + 2`).
    pub fn dimension(&self) -> usize {
        self.split.len()
    }
}

/// An encrypted document index: the two encrypted shares of the extended indicator vector.
#[derive(Clone, Debug)]
pub struct MrseIndex {
    /// The document this index belongs to.
    pub document_id: u64,
    share1: Vec<f64>,
    share2: Vec<f64>,
}

/// An encrypted query trapdoor.
#[derive(Clone, Debug)]
pub struct MrseTrapdoor {
    share1: Vec<f64>,
    share2: Vec<f64>,
}

/// The MRSE scheme instance over a fixed dictionary.
pub struct MrseScheme {
    dictionary: Dictionary,
    /// Magnitude of the per-document randomization term ε (the paper's precision/privacy
    /// trade-off parameter; small values keep the ranking faithful).
    epsilon_magnitude: f64,
}

impl MrseScheme {
    /// Create a scheme over `dictionary` with a small default ε magnitude (0.01).
    pub fn new(dictionary: Dictionary) -> Self {
        MrseScheme {
            dictionary,
            epsilon_magnitude: 0.01,
        }
    }

    /// Override the ε magnitude (0 disables index randomization entirely).
    pub fn with_epsilon(mut self, epsilon_magnitude: f64) -> Self {
        self.epsilon_magnitude = epsilon_magnitude;
        self
    }

    /// The dictionary this scheme indexes against.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// Extended vector dimension `n + 2`.
    pub fn dimension(&self) -> usize {
        self.dictionary.len() + 2
    }

    /// Generate the secret key: the split string and two random invertible matrices.
    ///
    /// This is the expensive setup step (two `O(n³)` inversions); the paper's point is that
    /// even the *per-document* cost afterwards is `O(n²)`.
    pub fn generate_key<R: Rng + ?Sized>(&self, rng: &mut R) -> MrseKey {
        let dim = self.dimension();
        let split: Vec<bool> = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
        let m1 = Matrix::random_invertible(dim, rng);
        let m2 = Matrix::random_invertible(dim, rng);
        let m1_inv = m1.inverse().expect("matrix generated invertible");
        let m2_inv = m2.inverse().expect("matrix generated invertible");
        MrseKey {
            split,
            m1_t: m1.transpose(),
            m2_t: m2.transpose(),
            m1_inv,
            m2_inv,
        }
    }

    /// Build the extended indicator vector `p̃ = (p, ε, 1)` for a set of keywords.
    fn extend_index_vector<R: Rng + ?Sized>(&self, keywords: &[&str], rng: &mut R) -> Vec<f64> {
        let mut v = self.dictionary.indicator_vector(keywords);
        let epsilon = if self.epsilon_magnitude > 0.0 {
            rng.gen_range(-self.epsilon_magnitude..self.epsilon_magnitude)
        } else {
            0.0
        };
        v.push(epsilon);
        v.push(1.0);
        v
    }

    /// Build the extended query vector `q̃ = (r·q, r, t)`.
    fn extend_query_vector<R: Rng + ?Sized>(
        &self,
        keywords: &[&str],
        rng: &mut R,
    ) -> (Vec<f64>, f64, f64) {
        let q = self.dictionary.indicator_vector(keywords);
        let r: f64 = rng.gen_range(0.5..2.0);
        let t: f64 = rng.gen_range(-1.0..1.0);
        let mut v: Vec<f64> = q.iter().map(|x| x * r).collect();
        v.push(r);
        v.push(t);
        (v, r, t)
    }

    /// Split a vector into two shares. For **index** vectors: positions where `split = true`
    /// are copied into both shares, positions where `split = false` are randomly shared.
    /// For **query** vectors the convention is reversed (`invert = true`).
    fn split_vector<R: Rng + ?Sized>(
        &self,
        v: &[f64],
        key: &MrseKey,
        invert: bool,
        rng: &mut R,
    ) -> (Vec<f64>, Vec<f64>) {
        let mut a = vec![0.0; v.len()];
        let mut b = vec![0.0; v.len()];
        for i in 0..v.len() {
            let copy_here = key.split[i] ^ invert;
            if copy_here {
                a[i] = v[i];
                b[i] = v[i];
            } else {
                let share: f64 = rng.gen_range(-1.0..1.0);
                a[i] = v[i] / 2.0 + share;
                b[i] = v[i] / 2.0 - share;
            }
        }
        (a, b)
    }

    /// Encrypt a document's keyword set into an [`MrseIndex`]. Cost: two `(n+2)²`
    /// matrix-vector products.
    pub fn build_index<R: Rng + ?Sized>(
        &self,
        key: &MrseKey,
        document_id: u64,
        keywords: &[&str],
        rng: &mut R,
    ) -> MrseIndex {
        let extended = self.extend_index_vector(keywords, rng);
        let (p1, p2) = self.split_vector(&extended, key, false, rng);
        MrseIndex {
            document_id,
            share1: key.m1_t.matvec(&p1).expect("dimensions fixed by scheme"),
            share2: key.m2_t.matvec(&p2).expect("dimensions fixed by scheme"),
        }
    }

    /// Encrypt a query into an [`MrseTrapdoor`]. Cost: two `(n+2)²` matrix-vector products.
    pub fn trapdoor<R: Rng + ?Sized>(
        &self,
        key: &MrseKey,
        keywords: &[&str],
        rng: &mut R,
    ) -> MrseTrapdoor {
        let (extended, _r, _t) = self.extend_query_vector(keywords, rng);
        let (q1, q2) = self.split_vector(&extended, key, true, rng);
        MrseTrapdoor {
            share1: key.m1_inv.matvec(&q1).expect("dimensions fixed by scheme"),
            share2: key.m2_inv.matvec(&q2).expect("dimensions fixed by scheme"),
        }
    }

    /// Server-side similarity score of one document against a trapdoor:
    /// `I·T = r·(p·q + ε) + t`.
    pub fn score(&self, index: &MrseIndex, trapdoor: &MrseTrapdoor) -> f64 {
        dot(&index.share1, &trapdoor.share1) + dot(&index.share2, &trapdoor.share2)
    }

    /// Rank all documents by score (descending) and return the top `k` as
    /// `(document_id, score)` pairs.
    pub fn search(
        &self,
        indices: &[MrseIndex],
        trapdoor: &MrseTrapdoor,
        k: usize,
    ) -> Vec<(u64, f64)> {
        let mut scored: Vec<(u64, f64)> = indices
            .iter()
            .map(|idx| (idx.document_id, self.score(idx, trapdoor)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_scheme() -> (MrseScheme, MrseKey, StdRng) {
        let dict = Dictionary::from_words((0..20).map(|i| format!("word{i}")));
        let scheme = MrseScheme::new(dict).with_epsilon(0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let key = scheme.generate_key(&mut rng);
        (scheme, key, rng)
    }

    #[test]
    fn dimension_is_dictionary_plus_two() {
        let (scheme, key, _) = small_scheme();
        assert_eq!(scheme.dimension(), 22);
        assert_eq!(key.dimension(), 22);
        assert_eq!(scheme.dictionary().len(), 20);
    }

    #[test]
    fn score_recovers_scaled_inner_product() {
        // With ε = 0: score = r·(p·q) + t, so for two documents scored against the SAME
        // trapdoor, the difference in scores is r·(difference in matched keyword counts) —
        // i.e. the ranking by matched count is preserved exactly.
        let (scheme, key, mut rng) = small_scheme();
        let idx_two_matches = scheme.build_index(&key, 0, &["word1", "word2", "word9"], &mut rng);
        let idx_one_match = scheme.build_index(&key, 1, &["word1", "word15"], &mut rng);
        let idx_no_match = scheme.build_index(&key, 2, &["word17", "word18"], &mut rng);
        let trapdoor = scheme.trapdoor(&key, &["word1", "word2"], &mut rng);

        let s2 = scheme.score(&idx_two_matches, &trapdoor);
        let s1 = scheme.score(&idx_one_match, &trapdoor);
        let s0 = scheme.score(&idx_no_match, &trapdoor);
        assert!(s2 > s1 + 1e-6, "s2={s2}, s1={s1}");
        assert!(s1 > s0 + 1e-6, "s1={s1}, s0={s0}");
        // The gaps are both exactly r (one extra matching keyword each).
        assert!(((s2 - s1) - (s1 - s0)).abs() < 1e-6);
    }

    #[test]
    fn search_returns_documents_in_relevance_order() {
        let (scheme, key, mut rng) = small_scheme();
        let indices = vec![
            scheme.build_index(&key, 10, &["word0"], &mut rng),
            scheme.build_index(&key, 11, &["word0", "word1"], &mut rng),
            scheme.build_index(&key, 12, &["word0", "word1", "word2"], &mut rng),
            scheme.build_index(&key, 13, &["word19"], &mut rng),
        ];
        let trapdoor = scheme.trapdoor(&key, &["word0", "word1", "word2"], &mut rng);
        let top = scheme.search(&indices, &trapdoor, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, 12);
        assert_eq!(top[1].0, 11);
        assert_eq!(top[2].0, 10);
    }

    #[test]
    fn unknown_keywords_are_ignored() {
        let (scheme, key, mut rng) = small_scheme();
        let idx = scheme.build_index(&key, 0, &["word3", "not-in-dictionary"], &mut rng);
        let td_known = scheme.trapdoor(&key, &["word3"], &mut rng);
        let td_unknown = scheme.trapdoor(&key, &["also-unknown"], &mut rng);
        assert!(scheme.score(&idx, &td_known) > scheme.score(&idx, &td_unknown));
    }

    #[test]
    fn encrypted_shares_hide_the_indicator_vector() {
        // The encrypted index must not simply contain the 0/1 indicator pattern.
        let (scheme, key, mut rng) = small_scheme();
        let idx = scheme.build_index(&key, 0, &["word5"], &mut rng);
        let binary_like = idx
            .share1
            .iter()
            .filter(|v| (v.abs() < 1e-9) || ((v.abs() - 1.0).abs() < 1e-9))
            .count();
        assert!(binary_like < idx.share1.len() / 2);
    }

    #[test]
    fn epsilon_randomizes_repeated_indexing() {
        let dict = Dictionary::from_words((0..10).map(|i| format!("w{i}")));
        let scheme = MrseScheme::new(dict).with_epsilon(0.5);
        let mut rng = StdRng::seed_from_u64(9);
        let key = scheme.generate_key(&mut rng);
        let a = scheme.build_index(&key, 0, &["w1"], &mut rng);
        let b = scheme.build_index(&key, 0, &["w1"], &mut rng);
        let td = scheme.trapdoor(&key, &["w1"], &mut rng);
        // Same document indexed twice gives different scores (the ε noise)…
        assert!((scheme.score(&a, &td) - scheme.score(&b, &td)).abs() > 1e-9);
        // …but both stay within ε·r of each other.
        assert!((scheme.score(&a, &td) - scheme.score(&b, &td)).abs() < 2.5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn prop_more_matching_keywords_never_scores_lower(seed in 0u64..u64::MAX) {
            let mut rng = StdRng::seed_from_u64(seed);
            let dict = Dictionary::from_words((0..12).map(|i| format!("w{i}")));
            let scheme = MrseScheme::new(dict).with_epsilon(0.0);
            let key = scheme.generate_key(&mut rng);
            // Document A contains a strict superset of document B's matching keywords.
            let idx_superset = scheme.build_index(&key, 0, &["w0", "w1", "w2"], &mut rng);
            let idx_subset = scheme.build_index(&key, 1, &["w0"], &mut rng);
            let td = scheme.trapdoor(&key, &["w0", "w1", "w2"], &mut rng);
            prop_assert!(scheme.score(&idx_superset, &td) > scheme.score(&idx_subset, &td));
        }
    }
}
