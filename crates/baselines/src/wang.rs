//! The shared-hash baseline (Wang et al., WISA 2009) and the §4.1 brute-force attack on it.
//!
//! Wang et al.'s common-secure-index scheme is the *indexing mechanism* MKSE adopts (bit
//! indices, bitwise products, Eq. 3 matching), but with one crucial difference: every
//! authorized user shares a single secret hash function. §4.1 argues that once that hash leaks
//! to the server, the whole keyword space can be brute-forced — "approximately 2²⁷ trials will
//! be sufficient" for a two-keyword query over a 25 000-word dictionary — whereas MKSE's
//! per-bin secret keys held only by the data owner remove that attack surface.
//!
//! [`SharedHashScheme`] implements the baseline (a thin wrapper over the same keyword-index
//! machinery, keyed with a *public* constant), and [`BruteForceAttack`] implements the keyword
//! recovery attack so experiment E11 can measure it.

use mkse_core::bitindex::BitIndex;
use mkse_core::keyword::keyword_index;
use mkse_core::params::SystemParams;
use mkse_textproc::dictionary::Dictionary;

/// The hash key every user shares in the Wang et al. model. It is a constant precisely to
/// model "the server has learned the shared secret" — the situation §4.1's attack assumes.
pub const SHARED_HASH_KEY: &[u8] = b"wang-et-al-common-secure-index-shared-hash";

/// The Wang et al. conjunctive-search baseline: identical index algebra to MKSE, but keyed
/// with a single shared hash function instead of per-bin owner-held secrets.
pub struct SharedHashScheme {
    params: SystemParams,
}

impl SharedHashScheme {
    /// Create the baseline under the given index parameters.
    pub fn new(params: SystemParams) -> Self {
        SharedHashScheme { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// Index of a single keyword under the shared hash.
    pub fn keyword_index(&self, keyword: &str) -> BitIndex {
        keyword_index(&self.params, SHARED_HASH_KEY, keyword)
    }

    /// Document index: bitwise product of the keyword indices (Eq. 2).
    pub fn document_index(&self, keywords: &[&str]) -> BitIndex {
        let mut idx = BitIndex::all_ones(self.params.index_bits);
        for kw in keywords {
            idx.bitwise_product_assign(&self.keyword_index(kw));
        }
        idx
    }

    /// Query index: same construction as the document index (the scheme has no separate
    /// trapdoor step — that is exactly its weakness).
    pub fn query_index(&self, keywords: &[&str]) -> BitIndex {
        self.document_index(keywords)
    }

    /// Eq. (3) matching.
    pub fn matches(&self, document: &BitIndex, query: &BitIndex) -> bool {
        document.matches_query(query)
    }
}

/// The §4.1 brute-force keyword-recovery attack against the shared-hash scheme.
///
/// The adversary (e.g. the server) knows the shared hash and a dictionary of candidate
/// keywords. Given an observed query index it enumerates single keywords and keyword pairs,
/// recomputes their query indices, and reports every candidate whose index matches the
/// observation exactly.
pub struct BruteForceAttack<'a> {
    scheme: &'a SharedHashScheme,
    dictionary: &'a Dictionary,
}

/// The outcome of a brute-force run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Keyword combinations whose recomputed index equals the observed query index.
    pub candidates: Vec<Vec<String>>,
    /// Number of index recomputations performed (the "trials" §4.1 counts).
    pub trials: u64,
}

impl AttackOutcome {
    /// True if exactly one candidate combination survived — full keyword recovery.
    pub fn is_unique_recovery(&self) -> bool {
        self.candidates.len() == 1
    }
}

impl<'a> BruteForceAttack<'a> {
    /// Prepare an attack with the adversary's knowledge: the (leaked) scheme and a dictionary.
    pub fn new(scheme: &'a SharedHashScheme, dictionary: &'a Dictionary) -> Self {
        BruteForceAttack { scheme, dictionary }
    }

    /// Try to recover the keywords behind `observed`, assuming it was built from exactly
    /// `num_keywords` dictionary words (1 or 2, matching the paper's "users usually search for
    /// a single or two keywords").
    pub fn recover(&self, observed: &BitIndex, num_keywords: usize) -> AttackOutcome {
        assert!(
            (1..=2).contains(&num_keywords),
            "the attack enumerates single keywords and pairs"
        );
        let words: Vec<&str> = self.dictionary.iter().collect();
        // Precompute single-keyword indices once: the pair enumeration reuses them.
        let singles: Vec<BitIndex> = words.iter().map(|w| self.scheme.keyword_index(w)).collect();
        let mut trials = words.len() as u64;
        let mut candidates = Vec::new();

        if num_keywords == 1 {
            for (i, idx) in singles.iter().enumerate() {
                if idx == observed {
                    candidates.push(vec![words[i].to_string()]);
                }
            }
            return AttackOutcome { candidates, trials };
        }

        for i in 0..singles.len() {
            for j in i + 1..singles.len() {
                trials += 1;
                if singles[i].bitwise_product(&singles[j]) == *observed {
                    candidates.push(vec![words[i].to_string(), words[j].to_string()]);
                }
            }
        }
        AttackOutcome { candidates, trials }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkse_core::keys::SchemeKeys;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scheme() -> SharedHashScheme {
        SharedHashScheme::new(SystemParams::default().without_randomization())
    }

    #[test]
    fn shared_hash_indexing_matches_eq3_semantics() {
        let s = scheme();
        let doc = s.document_index(&["cloud", "privacy", "search"]);
        assert!(s.matches(&doc, &s.query_index(&["cloud"])));
        assert!(s.matches(&doc, &s.query_index(&["cloud", "privacy"])));
        assert!(!s.matches(&doc, &s.query_index(&["unrelated-word"])));
    }

    #[test]
    fn every_user_computes_the_same_query_index() {
        // The defining property (and weakness) of the shared-hash model.
        let a = scheme().query_index(&["cloud"]);
        let b = scheme().query_index(&["cloud"]);
        assert_eq!(a, b);
    }

    #[test]
    fn brute_force_recovers_a_single_keyword() {
        let s = scheme();
        let dict = Dictionary::generate(500);
        let secret_query = s.query_index(&["kw00123"]);
        let attack = BruteForceAttack::new(&s, &dict);
        let outcome = attack.recover(&secret_query, 1);
        assert!(
            outcome.is_unique_recovery(),
            "candidates: {:?}",
            outcome.candidates
        );
        assert_eq!(outcome.candidates[0], vec!["kw00123".to_string()]);
        assert_eq!(outcome.trials, 500);
    }

    #[test]
    fn brute_force_recovers_a_keyword_pair() {
        let s = scheme();
        let dict = Dictionary::generate(120);
        let secret_query = s.query_index(&["kw00007", "kw00042"]);
        let attack = BruteForceAttack::new(&s, &dict);
        let outcome = attack.recover(&secret_query, 2);
        assert!(!outcome.candidates.is_empty());
        assert!(outcome
            .candidates
            .iter()
            .any(|c| c.contains(&"kw00007".to_string()) && c.contains(&"kw00042".to_string())));
        // Trials ≈ dictionary size + (n choose 2), matching the §4.1 cost estimate.
        assert_eq!(outcome.trials, 120 + 120 * 119 / 2);
    }

    #[test]
    fn brute_force_fails_against_trapdoor_based_mkse() {
        // The same attack run against an MKSE query (built under secret per-bin keys the
        // adversary does not hold) recovers nothing: recomputing indices under the shared hash
        // does not reproduce the observed index.
        let params = SystemParams::default().without_randomization();
        let s = SharedHashScheme::new(params.clone());
        let dict = Dictionary::generate(300);
        let keys = SchemeKeys::generate(&params, &mut StdRng::seed_from_u64(3));
        let mkse_query = keys.trapdoor_for(&params, "kw00123").index().clone();
        let attack = BruteForceAttack::new(&s, &dict);
        let outcome = attack.recover(&mkse_query, 1);
        assert!(outcome.candidates.is_empty());
    }

    #[test]
    #[should_panic(expected = "single keywords and pairs")]
    fn attack_rejects_large_keyword_counts() {
        let s = scheme();
        let dict = Dictionary::generate(10);
        let q = s.query_index(&["kw00001"]);
        let _ = BruteForceAttack::new(&s, &dict).recover(&q, 3);
    }
}
