//! # mkse-baselines — the systems the paper compares against
//!
//! §2 and §8.1 of the paper position the MKSE scheme against three reference points, all of
//! which are implemented here so the comparison experiments can be regenerated:
//!
//! * [`cao`] — **Cao et al., "Privacy-preserving multi-keyword ranked search over encrypted
//!   cloud data" (INFOCOM 2011)**, the MRSE scheme built on the secure kNN technique:
//!   dictionary-sized binary index vectors, split by a secret bit string and encrypted with two
//!   secret invertible `(n+2)×(n+2)` matrices. Its per-document matrix products are what make
//!   it "not efficient" (§2) — reproducing that cost profile is the point of experiment E9.
//! * [`wang`] — **Wang et al., "An efficient scheme of common secure indices for conjunctive
//!   keyword-based retrieval on encrypted data" (WISA 2009)**, the bit-index scheme MKSE builds
//!   on, but keyed with a single hash shared by all users. §4.1 argues this is brute-forceable
//!   once the hash leaks; [`wang::BruteForceAttack`] implements that attack.
//! * [`relevance`] — the classical plaintext relevance score of Eq. (4) (Zobel & Moffat), used
//!   in §5 to validate the quality of the level-based ranking.
//! * [`metrics`] — top-k agreement metrics used to compare the two rankings the way §5 reports
//!   them (top-1 agreement, top-3 containment, 4-of-top-5 agreement).

pub mod cao;
pub mod metrics;
pub mod relevance;
pub mod wang;

pub use cao::{MrseIndex, MrseKey, MrseScheme, MrseTrapdoor};
pub use metrics::{top_k_containment, top_k_overlap, RankingComparison};
pub use relevance::{relevance_score, RelevanceRanker};
pub use wang::{BruteForceAttack, SharedHashScheme};
