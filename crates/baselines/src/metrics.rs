//! Ranking-agreement metrics.
//!
//! §5 reports the quality of the MKSE level-based ranking against the Eq. (4) reference as
//! three statistics over repeated trials: how often the reference's top match appears as the
//! MKSE top match (40%), how often it appears in MKSE's top 3 (100%), and how often at least 4
//! of the reference's top 5 appear in MKSE's top 5 (80%). These helpers compute the per-trial
//! ingredients; the experiment binary aggregates them.

use serde::{Deserialize, Serialize};

/// Number of elements of `reference`'s first `k` that also appear in `candidate`'s first `k`.
pub fn top_k_overlap(reference: &[u64], candidate: &[u64], k: usize) -> usize {
    let ref_top: Vec<u64> = reference.iter().take(k).copied().collect();
    let cand_top: Vec<u64> = candidate.iter().take(k).copied().collect();
    ref_top.iter().filter(|id| cand_top.contains(id)).count()
}

/// True if `reference`'s single top element appears within `candidate`'s first `k`.
pub fn top_k_containment(reference: &[u64], candidate: &[u64], k: usize) -> bool {
    match reference.first() {
        None => false,
        Some(top) => candidate.iter().take(k).any(|id| id == top),
    }
}

/// Aggregated comparison between a reference ranking method and a candidate over many trials.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RankingComparison {
    /// Number of trials recorded.
    pub trials: usize,
    /// Trials where the reference top-1 was also the candidate top-1.
    pub top1_agreement: usize,
    /// Trials where the reference top-1 was within the candidate's top 3.
    pub top1_in_top3: usize,
    /// Trials where at least 4 of the reference's top 5 were within the candidate's top 5.
    pub four_of_top5: usize,
}

impl RankingComparison {
    /// Start an empty comparison.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one trial given both methods' ranked id lists (best first).
    pub fn record(&mut self, reference: &[u64], candidate: &[u64]) {
        self.trials += 1;
        if top_k_containment(reference, candidate, 1) {
            self.top1_agreement += 1;
        }
        if top_k_containment(reference, candidate, 3) {
            self.top1_in_top3 += 1;
        }
        if top_k_overlap(reference, candidate, 5) >= 4 {
            self.four_of_top5 += 1;
        }
    }

    /// Fraction of trials with exact top-1 agreement (the paper reports ≈ 40%).
    pub fn top1_agreement_rate(&self) -> f64 {
        self.rate(self.top1_agreement)
    }

    /// Fraction of trials where the reference top-1 is in the candidate top 3 (paper: 100%).
    pub fn top1_in_top3_rate(&self) -> f64 {
        self.rate(self.top1_in_top3)
    }

    /// Fraction of trials where ≥ 4 of the reference top 5 are in the candidate top 5
    /// (paper: ≈ 80%).
    pub fn four_of_top5_rate(&self) -> f64 {
        self.rate(self.four_of_top5)
    }

    fn rate(&self, count: usize) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            count as f64 / self.trials as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_counts_common_prefix_members() {
        let a = vec![1, 2, 3, 4, 5];
        let b = vec![5, 4, 9, 2, 1];
        assert_eq!(top_k_overlap(&a, &b, 5), 4);
        assert_eq!(top_k_overlap(&a, &b, 1), 0);
        assert_eq!(top_k_overlap(&a, &b, 2), 0); // {1,2} vs {5,4} share nothing
        assert_eq!(top_k_overlap(&a, &b, 4), 2); // {1,2,3,4} vs {5,4,9,2} share {2,4}
    }

    #[test]
    fn overlap_edge_cases() {
        assert_eq!(top_k_overlap(&[], &[1, 2], 3), 0);
        assert_eq!(top_k_overlap(&[1, 2], &[], 3), 0);
        assert_eq!(top_k_overlap(&[1, 2], &[1, 2], 10), 2);
    }

    #[test]
    fn containment_checks_reference_top_element() {
        assert!(top_k_containment(&[7, 1], &[3, 7, 9], 3));
        assert!(!top_k_containment(&[7, 1], &[3, 7, 9], 1));
        assert!(!top_k_containment(&[], &[1], 3));
        assert!(!top_k_containment(&[5], &[], 3));
    }

    #[test]
    fn comparison_accumulates_rates() {
        let mut cmp = RankingComparison::new();
        // Trial 1: perfect agreement.
        cmp.record(&[1, 2, 3, 4, 5], &[1, 2, 3, 4, 5]);
        // Trial 2: top-1 only in top-3; top-5 overlap is 4.
        cmp.record(&[1, 2, 3, 4, 5], &[2, 3, 1, 4, 9]);
        // Trial 3: complete disagreement.
        cmp.record(&[1, 2, 3, 4, 5], &[6, 7, 8, 9, 10]);
        assert_eq!(cmp.trials, 3);
        assert!((cmp.top1_agreement_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((cmp.top1_in_top3_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cmp.four_of_top5_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_comparison_reports_zero_rates() {
        let cmp = RankingComparison::new();
        assert_eq!(cmp.top1_agreement_rate(), 0.0);
        assert_eq!(cmp.top1_in_top3_rate(), 0.0);
        assert_eq!(cmp.four_of_top5_rate(), 0.0);
    }
}
