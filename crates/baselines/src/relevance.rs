//! The plaintext relevance score of Eq. (4) (Zobel & Moffat style), used in §5 as the
//! reference ranking the level-based MKSE ranking is compared against:
//!
//! ```text
//! Score(W, R) = Σ_{t ∈ W}  (1/|R|) · (1 + ln f_{R,t}) · ln(1 + M/f_t)
//! ```
//!
//! where `W` is the set of searched keywords, `f_{R,t}` the term frequency of `t` in file `R`,
//! `f_t` the number of files containing `t`, `M` the number of files in the database, and
//! `|R|` the length of the file.

use mkse_textproc::document::{Document, TermFrequencies};
use std::collections::HashMap;

/// Compute Eq. (4) for a single document.
///
/// Terms with `f_{R,t} = 0` contribute nothing; a term absent from the whole collection
/// (`f_t = 0`) also contributes nothing (its IDF factor is undefined — there is nothing to
/// rank).
pub fn relevance_score(
    query: &[&str],
    doc_terms: &TermFrequencies,
    doc_length: u64,
    collection_frequency: &HashMap<String, usize>,
    num_documents: usize,
) -> f64 {
    if doc_length == 0 {
        return 0.0;
    }
    let m = num_documents as f64;
    query
        .iter()
        .map(|t| {
            let f_rt = doc_terms.frequency(t) as f64;
            let f_t = collection_frequency.get(*t).copied().unwrap_or(0) as f64;
            if f_rt == 0.0 || f_t == 0.0 {
                return 0.0;
            }
            (1.0 / doc_length as f64) * (1.0 + f_rt.ln()) * (1.0 + m / f_t).ln()
        })
        .sum()
}

/// Ranks a document collection by Eq. (4).
pub struct RelevanceRanker {
    /// `f_t`: number of documents containing each term.
    collection_frequency: HashMap<String, usize>,
    /// `M`: collection size.
    num_documents: usize,
    /// `|R|` per document id (the §5 experiment uses equal lengths for all files).
    lengths: HashMap<u64, u64>,
}

impl RelevanceRanker {
    /// Build the collection statistics from a document collection, using each document's
    /// total term count as its length `|R|`.
    pub fn from_documents(documents: &[Document]) -> Self {
        Self::from_documents_with_length(documents, None)
    }

    /// Build the collection statistics, overriding every document's length with
    /// `uniform_length` when provided (the paper's §5 workload assumes equal-length files).
    pub fn from_documents_with_length(documents: &[Document], uniform_length: Option<u64>) -> Self {
        let mut collection_frequency: HashMap<String, usize> = HashMap::new();
        let mut lengths = HashMap::new();
        for doc in documents {
            for (term, _) in doc.terms.iter() {
                *collection_frequency.entry(term.to_string()).or_insert(0) += 1;
            }
            let len = uniform_length.unwrap_or_else(|| doc.terms.total_terms().max(1));
            lengths.insert(doc.id, len);
        }
        RelevanceRanker {
            collection_frequency,
            num_documents: documents.len(),
            lengths,
        }
    }

    /// Number of documents containing `term` (`f_t`).
    pub fn document_frequency(&self, term: &str) -> usize {
        self.collection_frequency.get(term).copied().unwrap_or(0)
    }

    /// Score one document against a query.
    pub fn score(&self, query: &[&str], doc: &Document) -> f64 {
        let length = self.lengths.get(&doc.id).copied().unwrap_or(1);
        relevance_score(
            query,
            &doc.terms,
            length,
            &self.collection_frequency,
            self.num_documents,
        )
    }

    /// Rank the given documents by descending score; ties broken by document id for
    /// determinism. Returns `(document_id, score)` pairs.
    pub fn rank(&self, query: &[&str], documents: &[Document]) -> Vec<(u64, f64)> {
        let mut scored: Vec<(u64, f64)> = documents
            .iter()
            .map(|d| (d.id, self.score(query, d)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored
    }

    /// The ids of the top `k` documents for a query.
    pub fn top_k(&self, query: &[&str], documents: &[Document], k: usize) -> Vec<u64> {
        self.rank(query, documents)
            .into_iter()
            .take(k)
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkse_textproc::document::TermFrequencies;

    fn doc(id: u64, pairs: &[(&str, u32)]) -> Document {
        Document::from_terms(
            id,
            TermFrequencies::from_pairs(pairs.iter().map(|(t, c)| (t.to_string(), *c))),
        )
    }

    #[test]
    fn higher_term_frequency_scores_higher() {
        let docs = vec![
            doc(0, &[("cloud", 10)]),
            doc(1, &[("cloud", 1)]),
            doc(2, &[("other", 5)]),
        ];
        let ranker = RelevanceRanker::from_documents_with_length(&docs, Some(100));
        let ranking = ranker.rank(&["cloud"], &docs);
        assert_eq!(ranking[0].0, 0);
        assert_eq!(ranking[1].0, 1);
        assert_eq!(ranking[2].0, 2);
        assert_eq!(ranking[2].1, 0.0);
    }

    #[test]
    fn rarer_terms_carry_more_weight() {
        // "rare" appears in 1 of 3 documents, "common" in all 3; with equal term frequencies
        // the document matching the rare term outranks the one matching the common term.
        let docs = vec![
            doc(0, &[("rare", 2), ("filler", 1)]),
            doc(1, &[("common", 2)]),
            doc(2, &[("common", 1), ("filler", 3)]),
        ];
        let extra = doc(3, &[("common", 1)]);
        let mut all = docs.clone();
        all.push(extra);
        let ranker = RelevanceRanker::from_documents_with_length(&all, Some(50));
        let s_rare = ranker.score(&["rare"], &all[0]);
        let s_common = ranker.score(&["common"], &all[1]);
        assert!(s_rare > s_common);
        assert_eq!(ranker.document_frequency("rare"), 1);
        assert_eq!(ranker.document_frequency("common"), 3);
        assert_eq!(ranker.document_frequency("absent"), 0);
    }

    #[test]
    fn multi_keyword_scores_accumulate() {
        let docs = vec![doc(0, &[("a", 3), ("b", 3)]), doc(1, &[("a", 3)])];
        let ranker = RelevanceRanker::from_documents_with_length(&docs, Some(10));
        let both = ranker.score(&["a", "b"], &docs[0]);
        let single = ranker.score(&["a", "b"], &docs[1]);
        assert!(both > single);
        // Score over one keyword plus score over the other equals the combined score.
        let sum = ranker.score(&["a"], &docs[0]) + ranker.score(&["b"], &docs[0]);
        assert!((both - sum).abs() < 1e-12);
    }

    #[test]
    fn absent_query_terms_contribute_zero() {
        let docs = vec![doc(0, &[("x", 5)])];
        let ranker = RelevanceRanker::from_documents(&docs);
        assert_eq!(ranker.score(&["not-there"], &docs[0]), 0.0);
    }

    #[test]
    fn zero_length_document_scores_zero() {
        let tf = TermFrequencies::from_pairs([("a", 1u32)]);
        let score = relevance_score(&["a"], &tf, 0, &HashMap::new(), 10);
        assert_eq!(score, 0.0);
    }

    #[test]
    fn top_k_returns_k_ids_in_order() {
        let docs: Vec<Document> = (0..10).map(|i| doc(i, &[("kw", (i + 1) as u32)])).collect();
        let ranker = RelevanceRanker::from_documents_with_length(&docs, Some(20));
        let top3 = ranker.top_k(&["kw"], &docs, 3);
        assert_eq!(top3, vec![9, 8, 7]);
    }

    #[test]
    fn eq4_matches_hand_computed_value() {
        // Single doc, single term: (1/|R|)(1 + ln f_Rt) ln(1 + M/f_t)
        // with |R| = 4, f_Rt = 3, M = 8, f_t = 2: (0.25)(1 + ln 3)(ln 5).
        let tf = TermFrequencies::from_pairs([("t", 3u32)]);
        let mut cf = HashMap::new();
        cf.insert("t".to_string(), 2usize);
        let got = relevance_score(&["t"], &tf, 4, &cf, 8);
        let expected = 0.25 * (1.0 + 3f64.ln()) * 5f64.ln();
        assert!((got - expected).abs() < 1e-12);
    }
}
