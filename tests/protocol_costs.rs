//! Integration: the communication and computation cost model (Tables 1 and 2) measured over
//! the real protocol actors, and its key qualitative properties.

use mkse::protocol::{OwnerConfig, Party, Phase, SearchSession};
use mkse::textproc::corpus::{CorpusSpec, FrequencyModel, SyntheticCorpus};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn session(num_docs: usize, seed: u64) -> (SearchSession, StdRng, SyntheticCorpus) {
    let mut rng = StdRng::seed_from_u64(seed);
    let corpus = SyntheticCorpus::generate(
        &CorpusSpec {
            num_documents: num_docs,
            vocabulary_size: 1_000,
            keywords_per_document: 15,
            frequency_model: FrequencyModel::Uniform { lo: 1, hi: 15 },
        },
        &mut rng,
    );
    let config = OwnerConfig {
        rsa_modulus_bits: 256,
        ..OwnerConfig::default()
    };
    let session = SearchSession::setup(config, &corpus.documents, &mut rng).expect("setup");
    (session, rng, corpus)
}

#[test]
fn query_size_is_independent_of_the_number_of_search_terms() {
    // Table 1: the user sends r bits for the query, "independent from γ".
    let (mut s, mut rng, corpus) = session(40, 1);
    let few: Vec<&str> = corpus.documents[0].keywords().into_iter().take(1).collect();
    let many: Vec<&str> = corpus.documents[0].keywords().into_iter().take(6).collect();

    let report_few = s.run_query(&few, 0, &mut rng).unwrap();
    // Subtract the trapdoor phase (different bins) and the retrieval request: compare only the
    // query transmission, which is the first Search-phase record.
    let query_bits_few = report_few
        .communication
        .transmissions()
        .iter()
        .find(|t| t.from == Party::User && t.phase == Phase::Search)
        .unwrap()
        .bits;
    let report_many = s.run_query(&many, 0, &mut rng).unwrap();
    let query_bits_many = report_many
        .communication
        .transmissions()
        .iter()
        .find(|t| t.from == Party::User && t.phase == Phase::Search)
        .unwrap()
        .bits;
    assert_eq!(query_bits_few, 448);
    assert_eq!(query_bits_many, 448);
}

#[test]
fn trapdoor_traffic_scales_with_bins_not_with_queries() {
    let (mut s, mut rng, corpus) = session(40, 2);
    let kws: Vec<&str> = corpus.documents[1].keywords().into_iter().take(3).collect();

    let first = s.run_query(&kws, 0, &mut rng).unwrap();
    let second = s.run_query(&kws, 0, &mut rng).unwrap();
    assert!(first.communication.bits_sent(Party::User, Phase::Trapdoor) > 0);
    // Cached bin keys: the second identical query costs no trapdoor traffic at all.
    assert_eq!(
        second.communication.bits_sent(Party::User, Phase::Trapdoor),
        0
    );
    assert_eq!(
        second
            .communication
            .bits_sent(Party::DataOwner, Phase::Trapdoor),
        0
    );
}

#[test]
fn decrypt_phase_traffic_is_linear_in_retrieved_documents() {
    let (mut s, mut rng, corpus) = session(60, 3);
    let modulus_bits = s.owner.public_key().modulus_bits() as u64;
    // A single very common keyword ensures several matches.
    let kws: Vec<&str> = corpus.documents[2].keywords().into_iter().take(1).collect();

    let theta1 = s.run_query(&kws, 1, &mut rng).unwrap();
    let theta2 = s.run_query(&kws, 2, &mut rng).unwrap();
    assert_eq!(
        theta1
            .communication
            .bits_sent(Party::DataOwner, Phase::Decrypt),
        modulus_bits * theta1.retrieved.len() as u64
    );
    assert_eq!(
        theta2
            .communication
            .bits_sent(Party::DataOwner, Phase::Decrypt),
        modulus_bits * theta2.retrieved.len() as u64
    );
    assert!(theta2.retrieved.len() >= theta1.retrieved.len());
}

#[test]
fn server_work_is_binary_comparisons_only_and_linear_in_corpus_size() {
    let (mut s_small, mut rng_small, corpus_small) = session(30, 4);
    let (mut s_large, mut rng_large, corpus_large) = session(90, 4);

    let kws_small: Vec<&str> = corpus_small.documents[0]
        .keywords()
        .into_iter()
        .take(2)
        .collect();
    let kws_large: Vec<&str> = corpus_large.documents[0]
        .keywords()
        .into_iter()
        .take(2)
        .collect();
    let report_small = s_small.run_query(&kws_small, 0, &mut rng_small).unwrap();
    let report_large = s_large.run_query(&kws_large, 0, &mut rng_large).unwrap();

    // No cryptography on the server, ever.
    for report in [&report_small, &report_large] {
        assert_eq!(report.server_ops.public_key_operations(), 0);
        assert_eq!(report.server_ops.hashes, 0);
        assert_eq!(report.server_ops.symmetric_decryptions, 0);
    }
    // At least σ comparisons, at most σ·η.
    let eta = s_small.owner.params().rank_levels() as u64;
    assert!(report_small.server_ops.binary_comparisons >= 30);
    assert!(report_small.server_ops.binary_comparisons <= 30 * eta);
    assert!(report_large.server_ops.binary_comparisons >= 90);
    assert!(report_large.server_ops.binary_comparisons <= 90 * eta);
    // Linear growth: three times the corpus, at least twice the comparisons.
    assert!(
        report_large.server_ops.binary_comparisons
            >= 2 * report_small.server_ops.binary_comparisons
    );
}

#[test]
fn measured_wire_costs_track_the_analytic_table1() {
    // The envelope redesign measures what each exchange actually costs as
    // framed bytes; framing only ever adds to the analytic Table 1 bits.
    let (mut s, mut rng, corpus) = session(40, 6);
    let kws: Vec<&str> = corpus.documents[0].keywords().into_iter().take(2).collect();
    let report = s.run_query(&kws, 1, &mut rng).unwrap();
    let ledger = &report.communication;

    for party in [Party::User, Party::DataOwner, Party::Server] {
        for phase in [Phase::Trapdoor, Phase::Search, Phase::Decrypt] {
            let analytic = ledger.bits_sent(party, phase);
            let measured = ledger.wire_bits_sent(party, phase);
            assert!(
                measured >= analytic,
                "{party}/{phase}: measured {measured} < analytic {analytic}"
            );
            if analytic > 0 {
                assert!(measured > 0, "{party}/{phase}: analytic bits but no wire");
            }
        }
    }

    // Frame accounting: trapdoor + query + document request + one blind
    // decryption per retrieved document, every request answered.
    assert_eq!(report.wire.frames_sent, report.wire.frames_received);
    assert_eq!(report.wire.frames_sent, 3 + report.retrieved.len() as u64);
    // Request ids are reported per connection and line up with the frames.
    let ids = &report.wire.server_request_ids;
    assert_eq!(ids.end - ids.start, 2);
    let ids = &report.wire.owner_request_ids;
    assert_eq!(ids.end - ids.start, 1 + report.retrieved.len() as u64);
    assert!(report.shards >= 1);
}

#[test]
fn user_side_public_key_operations_stay_constant_per_document() {
    // Table 2: the user performs a constant number of modular exponentiations and
    // multiplications per retrieved document, independent of the corpus size.
    let (mut s, mut rng, corpus) = session(80, 5);
    let kws: Vec<&str> = corpus.documents[7].keywords().into_iter().take(1).collect();
    let report = s.run_query(&kws, 1, &mut rng).unwrap();
    assert!(report.user_ops.modular_exponentiations <= 6);
    assert!(report.user_ops.modular_multiplications <= 4);
    assert_eq!(
        report.user_ops.symmetric_decryptions,
        report.retrieved.len() as u64
    );
}
