//! Equivalence of the three server surfaces: the legacy `handle_*` shims,
//! direct `Service::call`, and a full framed-codec round trip through the
//! envelope `Client` must produce **byte-identical** replies — across shard
//! counts and with the result cache on and off (cold and warm).
//!
//! "Byte-identical" is checked literally: every pair of replies is also encoded
//! through the wire codec under the same request id and the frames compared.

// The legacy shims are exercised on purpose: equivalence with them is the point.
#![allow(deprecated)]

use mkse::core::QueryBuilder;
use mkse::protocol::{
    wire, BatchQueryMessage, Client, CloudServer, DataOwner, DocumentRequest, OwnerConfig,
    ProtocolError, QueryMessage, Request, Response, Service,
};
use mkse::textproc::Document;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    owner: DataOwner,
    queries: Vec<QueryMessage>,
    indices: Vec<mkse::core::RankedDocumentIndex>,
    encrypted: Vec<mkse::protocol::EncryptedDocumentTransfer>,
}

fn fixture() -> Fixture {
    let mut rng = StdRng::seed_from_u64(4242);
    let mut owner = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
    let texts = [
        "cloud privacy search encryption audit",
        "weather forecast rain and wind",
        "cloud storage pricing enterprise",
        "encrypted archive migration cloud",
        "audit of encryption key management",
        "cafeteria menu and office plants",
        "privacy impact assessment cloud data",
        "phishing incident report credentials",
        "searchable encryption design notes",
        "financial results revenue breakdown",
        "cloud audit logging pipeline",
        "intrusion detection firewall logs",
    ];
    let docs: Vec<Document> = texts
        .iter()
        .enumerate()
        .map(|(i, t)| Document::from_text(i as u64, t))
        .collect();
    let (indices, encrypted) = owner.prepare_documents(&docs, &mut rng);

    // Queries built ONCE so every surface sees identical bytes (repeats are what
    // warms the cache).
    let pool = owner.random_pool_trapdoors();
    let keyword_sets: [&[&str]; 4] = [&["cloud"], &["audit"], &["cloud", "audit"], &["privacy"]];
    let queries: Vec<QueryMessage> = keyword_sets
        .iter()
        .map(|kws| {
            let trapdoors = owner.scheme_keys().trapdoors_for(owner.params(), kws);
            let q = QueryBuilder::new(owner.params())
                .add_trapdoors(&trapdoors)
                .with_randomization(&pool)
                .build(&mut rng);
            QueryMessage {
                query: q.bits().clone(),
                top: None,
            }
        })
        .collect();
    Fixture {
        owner,
        queries,
        indices,
        encrypted,
    }
}

fn server(fx: &Fixture, shards: usize, cache: bool) -> CloudServer {
    let mut server = CloudServer::with_shards(fx.owner.params().clone(), shards);
    server
        .upload(fx.indices.clone(), fx.encrypted.clone())
        .expect("upload");
    if cache {
        server.enable_result_cache(64);
    }
    server
}

/// Frame-encode a response under a fixed request id: the literal bytes a client
/// would receive.
fn reply_bytes(response: &Response) -> Vec<u8> {
    wire::encode_response(7, response)
}

#[test]
fn shims_service_and_codec_produce_byte_identical_replies() {
    let fx = fixture();
    for &shards in &[1usize, 2, 7, 16] {
        for &cache in &[false, true] {
            let mut legacy = server(&fx, shards, cache);
            let mut direct = server(&fx, shards, cache);
            let mut framed = Client::new(server(&fx, shards, cache));

            // Two passes: with the cache on, the second pass answers from the
            // cache — replies must not change by a byte either way.
            for pass in 0..2 {
                for (qi, query) in fx.queries.iter().enumerate() {
                    let via_shim = Response::Search(legacy.handle_query(query));
                    let via_call = direct.call(Request::Query(query.clone()));
                    let via_wire =
                        Response::Search(framed.query(query).expect("framed query round trip"));
                    assert_eq!(
                        reply_bytes(&via_shim),
                        reply_bytes(&via_call),
                        "shim vs call: shards={shards} cache={cache} pass={pass} query={qi}"
                    );
                    assert_eq!(
                        reply_bytes(&via_call),
                        reply_bytes(&via_wire),
                        "call vs wire: shards={shards} cache={cache} pass={pass} query={qi}"
                    );
                }
            }

            // The batched surface: one message carrying every query.
            let batch = BatchQueryMessage {
                queries: fx.queries.iter().map(|q| q.query.clone()).collect(),
                top: Some(3),
            };
            let via_shim = Response::BatchSearch(legacy.handle_batch_query(&batch));
            let via_call = direct.call(Request::BatchQuery(batch.clone()));
            let via_wire =
                Response::BatchSearch(framed.batch_query(&batch).expect("framed batch round trip"));
            assert_eq!(reply_bytes(&via_shim), reply_bytes(&via_call));
            assert_eq!(reply_bytes(&via_call), reply_bytes(&via_wire));

            // Document retrieval, success and failure: errors travel the wire as
            // typed values and stay identical too.
            let doc_request = DocumentRequest {
                document_ids: vec![0, 5, 11],
            };
            let via_shim = legacy.handle_document_request(&doc_request).unwrap();
            let via_call = match direct.call(Request::Documents(doc_request.clone())) {
                Response::Documents(reply) => reply,
                other => panic!("expected Documents, got {}", other.name()),
            };
            let via_wire = framed
                .fetch_documents(&doc_request)
                .expect("framed retrieval");
            assert_eq!(via_shim, via_call);
            assert_eq!(via_call, via_wire);

            let missing = DocumentRequest {
                document_ids: vec![99],
            };
            assert_eq!(
                legacy.handle_document_request(&missing),
                Err(ProtocolError::UnknownDocument(99))
            );
            assert_eq!(
                direct.call(Request::Documents(missing.clone())),
                Response::Error(ProtocolError::UnknownDocument(99))
            );
            assert_eq!(
                framed.fetch_documents(&missing),
                Err(ProtocolError::UnknownDocument(99))
            );

            // All three surfaces did the same logical work: counter parity.
            let framed_counters = *framed.counters();
            assert_eq!(
                legacy.counters(),
                direct.counters(),
                "counters diverged: shards={shards} cache={cache}"
            );
            assert_eq!(*direct.counters(), framed_counters);
        }
    }
}

#[test]
fn snapshot_restore_is_equivalent_across_surfaces() {
    let fx = fixture();
    let mut legacy = server(&fx, 2, true);
    let mut direct = server(&fx, 2, true);
    let mut framed = Client::new(server(&fx, 2, true));

    let via_method = legacy.snapshot_index();
    let via_call = match direct.call(Request::SnapshotIndex) {
        Response::Snapshot(bytes) => bytes,
        other => panic!("expected Snapshot, got {}", other.name()),
    };
    let via_wire = framed.snapshot().expect("framed snapshot");
    assert_eq!(via_method, via_call);
    assert_eq!(via_call, via_wire);
    // Counter parity holds for snapshots exactly as for every other surface.
    assert_eq!(
        legacy.counters().requests_served,
        direct.counters().requests_served
    );
    assert_eq!(
        direct.counters().requests_served,
        framed.counters().requests_served
    );

    // Restoring through the framed surface matches restoring through the shim.
    let mut restored_shim = CloudServer::with_shards(fx.owner.params().clone(), 7);
    assert_eq!(restored_shim.restore_index(&via_method).unwrap(), 12);
    let mut restored_wire = Client::new(CloudServer::with_shards(fx.owner.params().clone(), 7));
    assert_eq!(restored_wire.restore(via_wire).expect("framed restore"), 12);
    let query = &fx.queries[0];
    assert_eq!(
        reply_bytes(&Response::Search(restored_shim.handle_query(query))),
        reply_bytes(&Response::Search(
            restored_wire.query(query).expect("framed query")
        )),
    );

    // A corrupt snapshot fails with the same typed error on both surfaces.
    let truncated = &via_method[..3];
    let shim_err = restored_shim.restore_index(truncated).unwrap_err();
    let wire_err = restored_wire.restore(truncated.to_vec()).unwrap_err();
    assert!(matches!(shim_err, ProtocolError::Persistence(_)));
    assert_eq!(shim_err, wire_err);
}

#[test]
fn misrouted_requests_are_rejected_with_typed_unsupported_errors() {
    let fx = fixture();
    let mut server = Client::new(server(&fx, 2, false));
    // An owner-side request sent to the cloud server comes back as a typed
    // error — through the full framed round trip.
    let err = server
        .blind_decrypt(&mkse::protocol::BlindDecryptRequest {
            user_id: 1,
            blinded_ciphertext: mkse::crypto::bigint::BigUint::from_u64(5),
            signature: mkse::crypto::rsa::RsaSignature::from_value(
                mkse::crypto::bigint::BigUint::from_u64(1),
            ),
        })
        .unwrap_err();
    assert!(matches!(err, ProtocolError::Unsupported(_)));
    assert!(err.to_string().contains("data owner"));

    // And symmetrically: a query sent to the data owner.
    let mut rng = StdRng::seed_from_u64(7);
    let owner = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
    let mut owner_client = Client::new(owner);
    let err = owner_client.query(&fx.queries[0]).unwrap_err();
    assert!(matches!(err, ProtocolError::Unsupported(_)));
    assert!(err.to_string().contains("cloud server"));
}

#[test]
fn pipelined_replies_correlate_out_of_order() {
    let fx = fixture();
    let mut client = Client::new(server(&fx, 2, false));

    // Reference replies, sequentially.
    let mut reference = Vec::new();
    for query in &fx.queries {
        reference.push(client.query(query).expect("sequential query"));
    }

    // Same queries pipelined: submit all, flush once, then take the replies in
    // reverse order — correlation is by request id, not arrival order.
    let ids: Vec<u64> = fx
        .queries
        .iter()
        .map(|q| client.submit(&Request::Query(q.clone())))
        .collect();
    assert_eq!(client.ready(), 0);
    assert_eq!(client.flush().expect("pipelined flush"), fx.queries.len());
    assert_eq!(client.ready(), fx.queries.len());
    for (i, id) in ids.iter().enumerate().rev() {
        let reply =
            Client::<CloudServer>::expect_search(client.take(*id).expect("correlated")).unwrap();
        assert_eq!(reply, reference[i], "pipelined reply {i} diverged");
    }
    assert_eq!(client.ready(), 0);
}
