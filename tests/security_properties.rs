//! Integration: the privacy requirements of §3.1, exercised across crates.
//!
//! These are behavioural checks, not proofs — they test the mechanisms the §7 proofs rest on:
//! index privacy needs the per-bin secret keys (Theorem 2), trapdoor forgery needs zero-bit
//! positions the adversary cannot identify (Theorem 3), data privacy needs the blinding to hide
//! which key is decrypted (Theorem 1), and non-impersonation needs signatures (Theorem 4).

use mkse::baselines::wang::{BruteForceAttack, SharedHashScheme};
use mkse::core::{QueryBuilder, SchemeKeys, SystemParams};
use mkse::crypto::rsa::RsaKeyPair;
use mkse::protocol::{BlindDecryptRequest, DataOwner, OwnerConfig, TrapdoorRequest};
use mkse::textproc::dictionary::Dictionary;
use mkse::textproc::Document;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn index_privacy_requires_the_bin_keys() {
    // An adversary that knows the public parameters, the GetBin function and even a candidate
    // keyword list cannot reproduce MKSE indices without the owner's bin keys — the same
    // brute-force enumeration that breaks the shared-hash baseline finds nothing.
    let params = SystemParams::default().without_randomization();
    let mut rng = StdRng::seed_from_u64(1);
    let keys = SchemeKeys::generate(&params, &mut rng);
    let dictionary = Dictionary::generate(2000);
    let shared = SharedHashScheme::new(params.clone());
    let attack = BruteForceAttack::new(&shared, &dictionary);

    // Against the baseline the attack recovers the exact keyword…
    let baseline_query = shared.query_index(&["kw01234"]);
    let baseline_outcome = attack.recover(&baseline_query, 1);
    assert!(baseline_outcome.is_unique_recovery());

    // …against MKSE, nothing.
    let mkse_query = keys.trapdoor_for(&params, "kw01234").index().clone();
    let mkse_outcome = attack.recover(&mkse_query, 1);
    assert!(mkse_outcome.candidates.is_empty());
}

#[test]
fn search_pattern_is_hidden_by_randomization() {
    // Two queries for the same keywords are never bit-identical once randomization is on, and
    // their Hamming distance lies in the same range as unrelated queries' distances.
    let params = SystemParams::default();
    let mut rng = StdRng::seed_from_u64(2);
    let keys = SchemeKeys::generate(&params, &mut rng);
    let pool = keys.random_pool_trapdoors(&params);
    let tds = keys.trapdoors_for(&params, &["invoice", "fraud"]);

    let mut same_distances = Vec::new();
    let mut diff_distances = Vec::new();
    for i in 0..40 {
        let q1 = QueryBuilder::new(&params)
            .add_trapdoors(&tds)
            .with_randomization(&pool)
            .build(&mut rng);
        let q2 = QueryBuilder::new(&params)
            .add_trapdoors(&tds)
            .with_randomization(&pool)
            .build(&mut rng);
        assert_ne!(
            q1.bits(),
            q2.bits(),
            "identical randomized queries at iteration {i}"
        );
        same_distances.push(q1.bits().hamming_distance(q2.bits()));

        let other = keys.trapdoors_for(&params, &[&format!("other-{i}"), &format!("topic-{i}")]);
        let q3 = QueryBuilder::new(&params)
            .add_trapdoors(&other)
            .with_randomization(&pool)
            .build(&mut rng);
        diff_distances.push(q1.bits().hamming_distance(q3.bits()));
    }
    let same_mean: f64 = same_distances.iter().sum::<usize>() as f64 / same_distances.len() as f64;
    let diff_mean: f64 = diff_distances.iter().sum::<usize>() as f64 / diff_distances.len() as f64;
    // Both populations live in the same 448-bit range, far from zero: repeated queries do not
    // collapse to small distances that would trivially link them.
    assert!(
        same_mean > 60.0,
        "same-query mean distance too small: {same_mean}"
    );
    assert!(
        diff_mean > same_mean,
        "unrelated queries should be at least as far apart"
    );
    assert!(
        same_mean > 0.4 * diff_mean,
        "distributions separated too cleanly: {same_mean} vs {diff_mean}"
    );
}

#[test]
fn trapdoor_does_not_reveal_its_keyword_and_subsets_are_not_derivable() {
    // Theorem 3's setting: from a two-keyword query index the server should not be able to
    // carve out a valid single-keyword trapdoor. We check the combinatorial core: the
    // two-keyword index has strictly more zeros than either constituent, and the constituent
    // zero sets are not identifiable from the combined index alone (multiple decompositions
    // exist — here we simply check that neither constituent equals the combination).
    let params = SystemParams::default().without_randomization();
    let mut rng = StdRng::seed_from_u64(3);
    let keys = SchemeKeys::generate(&params, &mut rng);
    let a = keys.trapdoor_for(&params, "alpha");
    let b = keys.trapdoor_for(&params, "beta");
    let combined = a.index().bitwise_product(b.index());
    assert_ne!(&combined, a.index());
    assert_ne!(&combined, b.index());
    assert!(combined.count_zeros() > a.index().count_zeros());
    assert!(combined.count_zeros() > b.index().count_zeros());
}

#[test]
fn data_privacy_blinded_values_are_unlinkable_to_ciphertexts() {
    // The data owner sees only z = c^e·y; for two different documents and fresh blinding
    // factors the owner-visible values carry no repetition that would link them to the stored
    // ciphertexts y1, y2.
    let mut rng = StdRng::seed_from_u64(4);
    let owner_rsa = RsaKeyPair::generate(256, &mut rng);
    let y1 = owner_rsa.public_key().encrypt_bytes(&[1u8; 16]).unwrap();
    let y2 = owner_rsa.public_key().encrypt_bytes(&[2u8; 16]).unwrap();

    let c1 = owner_rsa.public_key().random_blinding(&mut rng);
    let c2 = owner_rsa.public_key().random_blinding(&mut rng);
    let z1 = owner_rsa.public_key().blind(&y1, &c1).unwrap();
    let z2 = owner_rsa.public_key().blind(&y2, &c2).unwrap();
    let z1_again = owner_rsa
        .public_key()
        .blind(&y1, &owner_rsa.public_key().random_blinding(&mut rng))
        .unwrap();

    assert_ne!(z1, y1);
    assert_ne!(z2, y2);
    // Re-blinding the same ciphertext produces a completely different owner-visible value.
    assert_ne!(z1, z1_again);
}

#[test]
fn non_impersonation_unregistered_or_forged_requests_are_rejected() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut owner = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
    let honest = RsaKeyPair::generate(256, &mut rng);
    let attacker = RsaKeyPair::generate(256, &mut rng);
    owner.register_user(1, honest.public_key().clone());

    // The attacker tries to impersonate user 1 with its own signature.
    let bins = vec![4u32, 9];
    let payload = TrapdoorRequest::signed_payload(1, &bins);
    let forged = TrapdoorRequest {
        user_id: 1,
        bin_ids: bins.clone(),
        signature: attacker.sign(&payload),
    };
    assert!(owner.handle_trapdoor_request(&forged).is_err());

    // A well-signed request from the honest user goes through.
    let genuine = TrapdoorRequest {
        user_id: 1,
        bin_ids: bins.clone(),
        signature: honest.sign(&payload),
    };
    assert!(owner.handle_trapdoor_request(&genuine).is_ok());

    // Same for blinded decryption requests.
    let z = mkse::crypto::BigUint::from_u64(123456789);
    let blind_payload = BlindDecryptRequest::signed_payload(1, &z);
    let forged_blind = BlindDecryptRequest {
        user_id: 1,
        blinded_ciphertext: z.clone(),
        signature: attacker.sign(&blind_payload),
    };
    assert!(owner.handle_blind_decrypt(&forged_blind).is_err());
}

#[test]
fn owner_learns_only_bin_ids_not_keywords() {
    // The trapdoor request carries bin ids; many keywords map to each bin, so the request is
    // consistent with a large set of candidate keywords (the ϖ obfuscation parameter).
    let params = SystemParams::default();
    let universe: Vec<String> = (0..5_000).map(|i| format!("kw{i:05}")).collect();
    let occupancy = mkse::core::BinOccupancy::measure(&params, universe.iter().map(|s| s.as_str()));
    // Every bin the user could possibly reveal hides at least ϖ = 20 candidate keywords.
    assert!(
        occupancy.satisfies_security_parameter(20),
        "min occupancy {}",
        occupancy.min_occupancy()
    );
}

#[test]
fn different_owners_produce_incompatible_indices() {
    // Index privacy across deployments: the same corpus indexed under two different key sets
    // yields unrelated indices, so a server hosting two tenants cannot cross-link them.
    let params = SystemParams::default().without_randomization();
    let mut rng = StdRng::seed_from_u64(6);
    let keys_a = SchemeKeys::generate(&params, &mut rng);
    let keys_b = SchemeKeys::generate(&params, &mut rng);
    let doc = Document::from_text(0, "confidential merger plan");
    let idx_a = mkse::core::DocumentIndexer::new(&params, &keys_a).index_document(&doc);
    let idx_b = mkse::core::DocumentIndexer::new(&params, &keys_b).index_document(&doc);
    assert_ne!(idx_a.base_level(), idx_b.base_level());
}
