//! Exact equivalence of the shard-parallel engine and the sequential reference scan.
//!
//! The refactor's contract: for any corpus, any query and any shard count, the
//! [`SearchEngine`] over a [`ShardedStore`] returns **identical** `SearchMatch`
//! lists (same documents, same ranks, same deterministic order), identical merged
//! `SearchStats`, identical unranked id lists (storage order) and identical
//! metadata — only wall-clock time may differ. This test drives randomized corpora
//! and keyword workloads through both paths at shard counts 1, 2 and 7 (coprime
//! with nothing, so round-robin tails are exercised) plus 16 (more shards than some
//! corpora have documents).
//!
//! The same contract extends to the **result cache**: a cache-enabled engine must
//! return byte-identical matches, ranks, order and merged `SearchStats` on cold
//! lookups, warm hits, after interleaved inserts (per-shard invalidation) and
//! across a snapshot/restore cycle.
//!
//! Since PR 4 the engine's shard scans run on the block-major scan plane
//! (`mkse_core::scanplane`), so every assertion here also holds the bit-sliced
//! layout to the AoS reference; the plane-specific corners (ragged r, pruning
//! extremes, arbitrary bit patterns) live in
//! `mkse-core/tests/scanplane_equivalence.rs`, which CI additionally runs in
//! release mode.
//!
//! Since PR 6 shard scans are dispatched by a work-stealing scheduler over
//! chunk-range work units, so the contract gains two more knobs: lane count and
//! steal granularity. The steal-heavy sweep below holds every combination of
//! shards × lanes × granularity — cache on and off, fused batches with
//! duplicates — to the same byte-identical bar, including the cache hit/miss
//! counters, which must not be able to tell the schedulers apart.

use mkse::core::scanplane::CHUNK;
use mkse::core::{
    CacheConfig, CloudIndex, DocumentIndexer, QueryBuilder, QueryIndex, ScanScheduler, SchemeKeys,
    SearchEngine, SystemParams,
};
use mkse::textproc::corpus::{CorpusSpec, FrequencyModel, SyntheticCorpus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 16];

fn small_params() -> SystemParams {
    // Small index keeps the sweep fast; every structural property is preserved.
    SystemParams::new(128, 4, 16, 10, 5, vec![1, 3, 6]).expect("valid parameters")
}

struct Workload {
    params: SystemParams,
    indices: Vec<mkse::core::RankedDocumentIndex>,
    queries: Vec<QueryIndex>,
}

fn random_workload(seed: u64, num_docs: usize) -> Workload {
    let params = small_params();
    let mut rng = StdRng::seed_from_u64(seed);
    let keys = SchemeKeys::generate(&params, &mut rng);
    let indexer = DocumentIndexer::new(&params, &keys);
    let corpus = SyntheticCorpus::generate(
        &CorpusSpec {
            num_documents: num_docs,
            vocabulary_size: 60,
            keywords_per_document: 6,
            frequency_model: FrequencyModel::Uniform { lo: 1, hi: 8 },
        },
        &mut rng,
    );
    let indices: Vec<_> = corpus
        .documents
        .iter()
        .map(|d| indexer.index_document(d))
        .collect();

    // Query workload: single keywords, pairs drawn from real documents, and one
    // randomized query (randomization must not affect equivalence either).
    let pool = keys.random_pool_trapdoors(&params);
    let mut queries = Vec::new();
    for _ in 0..4 {
        let doc = &corpus.documents[rng.gen_range(0..corpus.documents.len())];
        let kws: Vec<&str> = doc.keywords().into_iter().take(2).collect();
        let tds = keys.trapdoors_for(&params, &kws);
        queries.push(
            QueryBuilder::new(&params)
                .add_trapdoors(&tds)
                .build(&mut rng),
        );
        let one = keys.trapdoors_for(&params, &kws[..1]);
        queries.push(
            QueryBuilder::new(&params)
                .add_trapdoors(&one)
                .with_randomization(&pool)
                .build(&mut rng),
        );
    }
    Workload {
        params,
        indices,
        queries,
    }
}

#[test]
fn sharded_search_is_bit_identical_to_sequential_reference() {
    for (seed, num_docs) in [(1u64, 23), (2, 64), (3, 5), (4, 100)] {
        let wl = random_workload(seed, num_docs);
        let mut reference = CloudIndex::new(wl.params.clone());
        reference.insert_all(wl.indices.iter().cloned()).unwrap();

        for shards in SHARD_COUNTS {
            let mut engine = SearchEngine::sharded(wl.params.clone(), shards);
            engine.insert_all(wl.indices.iter().cloned()).unwrap();
            assert_eq!(engine.len(), reference.len());

            for (qi, query) in wl.queries.iter().enumerate() {
                let ctx = format!("seed {seed}, {num_docs} docs, {shards} shards, query {qi}");
                let (seq_matches, seq_stats) = reference.search_ranked_with_stats(query);
                let (par_matches, par_stats) = engine.search_ranked_with_stats(query);
                assert_eq!(par_matches, seq_matches, "ranked matches differ: {ctx}");
                assert_eq!(par_stats, seq_stats, "merged stats differ: {ctx}");
                assert_eq!(
                    engine.search_unranked(query),
                    reference.search_unranked(query),
                    "unranked order differs: {ctx}"
                );
                assert_eq!(
                    engine.matching_metadata(query),
                    reference.matching_metadata(query),
                    "metadata differs: {ctx}"
                );
                assert_eq!(
                    engine.search_top(query, 3),
                    reference.search_top(query, 3),
                    "top-k differs: {ctx}"
                );
            }
        }
    }
}

#[test]
fn batched_execution_is_identical_to_sequential_singles() {
    let wl = random_workload(7, 48);
    let mut reference = CloudIndex::new(wl.params.clone());
    reference.insert_all(wl.indices.iter().cloned()).unwrap();

    for shards in SHARD_COUNTS {
        let mut engine = SearchEngine::sharded(wl.params.clone(), shards);
        engine.insert_all(wl.indices.iter().cloned()).unwrap();
        let batched = engine.search_batch_with_stats(&wl.queries);
        assert_eq!(batched.len(), wl.queries.len());
        for (query, (matches, stats)) in wl.queries.iter().zip(batched) {
            let (seq_matches, seq_stats) = reference.search_ranked_with_stats(query);
            assert_eq!(matches, seq_matches, "{shards} shards");
            assert_eq!(stats, seq_stats, "{shards} shards");
        }
    }
}

#[test]
fn fused_batch_with_duplicates_is_identical_to_sequential_singles() {
    // The fused batch sweep (one plane pass per shard for the whole batch, with
    // intra-batch dedup of repeated query indices) must be indistinguishable —
    // matches, ranks, order, per-query stats — from the sequential reference
    // answering each query alone, at every shard count, cache on and off.
    let wl = random_workload(17, 53);
    let mut reference = CloudIndex::new(wl.params.clone());
    reference.insert_all(wl.indices.iter().cloned()).unwrap();
    let mut batch = wl.queries.clone();
    batch.push(wl.queries[0].clone()); // duplicate of the first query
    batch.push(wl.queries[2].clone()); // and a duplicate further along

    for shards in SHARD_COUNTS {
        for cached in [false, true] {
            let mut engine = SearchEngine::sharded(wl.params.clone(), shards);
            if cached {
                engine.enable_cache(CacheConfig {
                    capacity_per_shard: 4,
                });
            }
            engine.insert_all(wl.indices.iter().cloned()).unwrap();
            for pass in ["cold", "warm"] {
                let batched = engine.search_batch_with_stats(&batch);
                assert_eq!(batched.len(), batch.len());
                for (qi, (query, (matches, stats))) in batch.iter().zip(&batched).enumerate() {
                    let ctx = format!("{shards} shards, cached={cached}, {pass}, query {qi}");
                    let (seq_matches, seq_stats) = reference.search_ranked_with_stats(query);
                    assert_eq!(matches, &seq_matches, "fused batch differs: {ctx}");
                    assert_eq!(stats, &seq_stats, "fused batch stats differ: {ctx}");
                }
            }
        }
    }
}

#[test]
fn steal_scheduler_heavy_configs_are_byte_identical() {
    // The work-stealing scheduler partitions every shard's plane into
    // chunk-range units and lets idle lanes steal; nothing about the reply —
    // matches, ranks, order, merged stats, cache counters — may depend on which
    // lane scanned which range. A corpus spanning several chunks makes the
    // granularity knob meaningful at low shard counts.
    let wl = random_workload(43, CHUNK + 200);
    let mut reference = CloudIndex::new(wl.params.clone());
    reference.insert_all(wl.indices.iter().cloned()).unwrap();
    let expected: Vec<_> = wl
        .queries
        .iter()
        .map(|q| reference.search_ranked_with_stats(q))
        .collect();
    // Fused batch with intra-batch duplicates: dedup must compose with stealing.
    let mut batch = wl.queries.clone();
    batch.push(wl.queries[0].clone());
    batch.push(wl.queries[1].clone());
    let expected_batch: Vec<_> = batch
        .iter()
        .map(|q| reference.search_ranked_with_stats(q))
        .collect();

    for shards in SHARD_COUNTS {
        let mut engine = SearchEngine::sharded(wl.params.clone(), shards);
        engine.insert_all(wl.indices.iter().cloned()).unwrap();
        let mut cached = SearchEngine::sharded(wl.params.clone(), shards)
            .with_result_cache(CacheConfig::default());
        cached.insert_all(wl.indices.iter().cloned()).unwrap();
        // A statically scheduled cached twin: the cache layer sits above the
        // scheduler, so its hit/miss/admission counters must match exactly.
        let mut static_cached = SearchEngine::sharded(wl.params.clone(), shards)
            .with_scan_scheduler(ScanScheduler::Static)
            .with_result_cache(CacheConfig::default());
        static_cached
            .insert_all(wl.indices.iter().cloned())
            .unwrap();

        for lanes in [1usize, 2, 3] {
            for granularity in [1usize, 8, 64] {
                let ctx = format!("{shards} shards, {lanes} lanes, granularity {granularity}");
                engine.set_scan_lanes(lanes);
                engine.set_steal_granularity(granularity);

                for (qi, query) in wl.queries.iter().enumerate() {
                    assert_eq!(
                        engine.search_ranked_with_stats(query),
                        expected[qi],
                        "stealing single differs: {ctx}, query {qi}"
                    );
                }
                let batched = engine.search_batch_with_stats(&batch);
                assert_eq!(batched.len(), batch.len());
                for (qi, got) in batched.iter().enumerate() {
                    assert_eq!(
                        got, &expected_batch[qi],
                        "stealing fused batch differs: {ctx}, query {qi}"
                    );
                }

                // Cache counters are scheduler-invisible: start both caches
                // cold, run a cold + warm pass, compare replies and counters.
                for eng in [&mut cached, &mut static_cached] {
                    eng.clear_cache();
                    eng.reset_cache_stats();
                }
                cached.set_scan_lanes(lanes);
                cached.set_steal_granularity(granularity);
                for pass in ["cold", "warm"] {
                    for (qi, query) in wl.queries.iter().enumerate() {
                        assert_eq!(
                            cached.search_ranked_with_stats(query),
                            expected[qi],
                            "cached stealing differs: {ctx}, {pass}, query {qi}"
                        );
                        let _ = static_cached.search_ranked_with_stats(query);
                    }
                    let warm_batch = cached.search_batch_with_stats(&batch);
                    for (qi, got) in warm_batch.iter().enumerate() {
                        assert_eq!(
                            got, &expected_batch[qi],
                            "cached stealing batch differs: {ctx}, {pass}, query {qi}"
                        );
                    }
                    let _ = static_cached.search_batch_with_stats(&batch);
                    assert_eq!(
                        cached.cache_stats(),
                        static_cached.cache_stats(),
                        "cache counters must be scheduler-invisible: {ctx}, {pass}"
                    );
                }
            }
        }
    }
}

#[test]
fn per_document_lookup_agrees_across_layouts() {
    let wl = random_workload(11, 37);
    let mut reference = CloudIndex::new(wl.params.clone());
    reference.insert_all(wl.indices.iter().cloned()).unwrap();
    for shards in SHARD_COUNTS {
        let mut engine = SearchEngine::sharded(wl.params.clone(), shards);
        engine.insert_all(wl.indices.iter().cloned()).unwrap();
        for idx in &wl.indices {
            assert_eq!(
                engine.document_index(idx.document_id),
                reference.document_index(idx.document_id)
            );
        }
        assert!(engine.document_index(u64::MAX).is_none());
    }
}

#[test]
fn cached_execution_is_byte_identical_at_every_shard_count() {
    for (seed, num_docs) in [(21u64, 23), (22, 64), (23, 5), (24, 100)] {
        let wl = random_workload(seed, num_docs);
        let mut reference = CloudIndex::new(wl.params.clone());
        reference.insert_all(wl.indices.iter().cloned()).unwrap();

        for shards in SHARD_COUNTS {
            let mut engine =
                SearchEngine::sharded(wl.params.clone(), shards).with_result_cache(CacheConfig {
                    capacity_per_shard: 4,
                });
            engine.insert_all(wl.indices.iter().cloned()).unwrap();

            // Two passes: the first admits (cold), the second hits (warm). The
            // tiny capacity also exercises LRU eviction mid-workload.
            for pass in ["cold", "warm"] {
                for (qi, query) in wl.queries.iter().enumerate() {
                    let ctx = format!(
                        "seed {seed}, {num_docs} docs, {shards} shards, query {qi}, {pass}"
                    );
                    let (seq_matches, seq_stats) = reference.search_ranked_with_stats(query);
                    let (par_matches, par_stats) = engine.search_ranked_with_stats(query);
                    assert_eq!(par_matches, seq_matches, "ranked matches differ: {ctx}");
                    assert_eq!(par_stats, seq_stats, "merged stats differ: {ctx}");
                    assert_eq!(
                        engine.search_top(query, 3),
                        reference.search_top(query, 3),
                        "top-k differs: {ctx}"
                    );
                }
            }
            // Batched execution against the same (now warm) cache.
            let batched = engine.search_batch_with_stats(&wl.queries);
            for (query, (matches, stats)) in wl.queries.iter().zip(batched) {
                let (seq_matches, seq_stats) = reference.search_ranked_with_stats(query);
                assert_eq!(
                    matches, seq_matches,
                    "cached batch differs: {shards} shards"
                );
                assert_eq!(
                    stats, seq_stats,
                    "cached batch stats differ: {shards} shards"
                );
            }
        }
    }
}

#[test]
fn interleaved_inserts_invalidate_cached_results_correctly() {
    let wl = random_workload(31, 60);
    let mut reference = CloudIndex::new(wl.params.clone());

    for shards in SHARD_COUNTS {
        let mut engine = SearchEngine::sharded(wl.params.clone(), shards)
            .with_result_cache(CacheConfig::default());
        reference = CloudIndex::new(wl.params.clone());

        // Interleave: upload a chunk, query everything twice (admit + hit),
        // upload the next chunk — cached results must never outlive the insert.
        for chunk in wl.indices.chunks(17) {
            reference.insert_all(chunk.iter().cloned()).unwrap();
            engine.insert_all(chunk.iter().cloned()).unwrap();
            for _ in 0..2 {
                for (qi, query) in wl.queries.iter().enumerate() {
                    let ctx = format!("{shards} shards, {} docs, query {qi}", reference.len());
                    assert_eq!(
                        engine.search_ranked_with_stats(query),
                        reference.search_ranked_with_stats(query),
                        "post-insert mismatch: {ctx}"
                    );
                }
            }
        }
    }
    assert_eq!(reference.len(), 60);
}

#[test]
fn snapshot_restore_cycle_preserves_cached_engine_equivalence() {
    let wl = random_workload(37, 41);
    let mut reference = CloudIndex::new(wl.params.clone());
    reference.insert_all(wl.indices.iter().cloned()).unwrap();

    for shards in SHARD_COUNTS {
        let mut original = SearchEngine::sharded(wl.params.clone(), shards)
            .with_result_cache(CacheConfig::default());
        original.insert_all(wl.indices.iter().cloned()).unwrap();
        // Warm the cache, snapshot, restore into a differently sharded cached
        // engine: the restored engine must answer identically (and from a cold
        // cache — stale entries must not survive the reload).
        for query in &wl.queries {
            let _ = original.search_ranked_with_stats(query);
        }
        let bytes = original.snapshot();

        let mut restored =
            SearchEngine::sharded(wl.params.clone(), 3).with_result_cache(CacheConfig::default());
        assert_eq!(restored.restore_snapshot(&bytes).unwrap(), wl.indices.len());
        let stats = restored.cache_stats().expect("cache enabled");
        assert_eq!(stats.hits, 0, "restored cache must start cold");
        for (qi, query) in wl.queries.iter().enumerate() {
            assert_eq!(
                restored.search_ranked_with_stats(query),
                reference.search_ranked_with_stats(query),
                "restored engine differs: {shards} shards, query {qi}"
            );
        }
    }
}

#[test]
fn snapshots_are_layout_independent() {
    use mkse::core::{deserialize_into, serialize_index_store};
    let wl = random_workload(13, 29);
    let mut reference = CloudIndex::new(wl.params.clone());
    reference.insert_all(wl.indices.iter().cloned()).unwrap();
    let reference_bytes = serialize_index_store(reference.store());

    for shards in SHARD_COUNTS {
        let mut engine = SearchEngine::sharded(wl.params.clone(), shards);
        engine.insert_all(wl.indices.iter().cloned()).unwrap();
        // Same bytes regardless of shard layout…
        assert_eq!(serialize_index_store(engine.store()), reference_bytes);
        // …and a restored engine behaves identically to the original.
        let mut restored = SearchEngine::sharded(wl.params.clone(), 3);
        deserialize_into(restored.store_mut(), &reference_bytes).unwrap();
        let query = &wl.queries[0];
        assert_eq!(
            restored.search_ranked_with_stats(query),
            reference.search_ranked_with_stats(query)
        );
    }
}
