//! The transport-invisibility oracle: N concurrent socket clients (real TCP
//! **and** the in-process `MemoryLink` twin) hammer one hub with interleaved
//! single-query / batch-query / upload traffic, with the cross-client batcher
//! and the result cache toggled through all four combinations — and every
//! reply each client received must be **byte-identical** to what a twin
//! `CloudServer`, identically initialized and driven sequentially through
//! `Service::call`, answers for the same requests.
//!
//! The bridge between "concurrent" and "sequential" is the hub's execution
//! journal: the dispatcher thread executes requests in a total order and
//! records it. Replaying that journal on the twin reproduces not just the
//! replies but the full server state trajectory — so the final `Counters` and
//! `CacheStats` requests (issued through the hub like everything else) also
//! assert that the *cumulative* operation and cache counters are unchanged by
//! the transport and the batcher.

use mkse::core::QueryBuilder;
use mkse::net::{Hub, HubConfig, NetClient};
use mkse::protocol::{
    wire, BatchQueryMessage, CloudServer, DataOwner, OwnerConfig, QueryMessage, Request, Response,
    Service, UploadMessage,
};
use mkse::textproc::Document;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(60);

struct Fixture {
    owner: DataOwner,
    queries: Vec<QueryMessage>,
    seed_upload: UploadMessage,
    /// One extra single-document upload per client, prepared up front so the
    /// client threads stay free of RNG state.
    client_uploads: Vec<UploadMessage>,
}

fn fixture(clients: usize) -> Fixture {
    let mut rng = StdRng::seed_from_u64(20812);
    let mut owner = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
    let texts = [
        "cloud privacy search encryption audit",
        "weather forecast rain and wind",
        "cloud storage pricing enterprise",
        "encrypted archive migration cloud",
        "audit of encryption key management",
        "privacy impact assessment cloud data",
        "searchable encryption design notes",
        "cloud audit logging pipeline",
    ];
    let docs: Vec<Document> = texts
        .iter()
        .enumerate()
        .map(|(i, t)| Document::from_text(i as u64, t))
        .collect();
    let (indices, encrypted) = owner.prepare_documents(&docs, &mut rng);
    let seed_upload = UploadMessage {
        indices,
        documents: encrypted,
    };

    let client_uploads = (0..clients)
        .map(|k| {
            let doc = Document::from_text(
                1000 + k as u64,
                "late arriving cloud audit notes from a busy client",
            );
            let (indices, documents) = owner.prepare_documents(&[doc], &mut rng);
            UploadMessage { indices, documents }
        })
        .collect();

    let pool = owner.random_pool_trapdoors();
    let keyword_sets: [&[&str]; 4] = [&["cloud"], &["audit"], &["cloud", "audit"], &["privacy"]];
    let queries = keyword_sets
        .iter()
        .map(|kws| {
            let trapdoors = owner.scheme_keys().trapdoors_for(owner.params(), kws);
            let q = QueryBuilder::new(owner.params())
                .add_trapdoors(&trapdoors)
                .with_randomization(&pool)
                .build(&mut rng);
            QueryMessage {
                query: q.bits().clone(),
                top: None,
            }
        })
        .collect();
    Fixture {
        owner,
        queries,
        seed_upload,
        client_uploads,
    }
}

/// An identically-initialized server: same params, shards, seed corpus and
/// cache setting as the one the hub owns.
fn seeded_server(fx: &Fixture, cache: bool) -> CloudServer {
    let mut server = CloudServer::with_shards(fx.owner.params().clone(), 2);
    server
        .upload(
            fx.seed_upload.indices.clone(),
            fx.seed_upload.documents.clone(),
        )
        .expect("seed upload");
    if cache {
        server.enable_result_cache(64);
    }
    server
}

/// The literal frame bytes a client would receive for `response` under `id`.
fn reply_bytes(id: u64, response: &Response) -> Vec<u8> {
    wire::encode_response(id, response)
}

/// The interleaved workload one client runs: a pipelined burst of queries,
/// a batch-query message, an upload (a batcher barrier), then the same
/// queries again so a warm cache answers repeats. Returns every
/// (request id, reply) pair in the order the replies were taken.
fn run_client(
    mut client: NetClient,
    queries: &[QueryMessage],
    upload: &UploadMessage,
) -> Vec<(u64, Response)> {
    let mut replies = Vec::new();

    // Pipelined burst: submit the whole window, flush once, take in order.
    let ids: Vec<u64> = queries
        .iter()
        .map(|q| client.submit(&Request::Query(q.clone())))
        .collect();
    client.flush().expect("flush query burst");
    for id in ids {
        let reply = client.wait_take(id, WAIT).expect("query reply");
        replies.push((id, reply));
    }

    // The batched envelope surface travels through the hub too.
    let batch = Request::BatchQuery(BatchQueryMessage {
        queries: queries.iter().map(|q| q.query.clone()).collect(),
        top: Some(3),
    });
    let id = client.submit(&batch);
    client.flush().expect("flush batch");
    replies.push((id, client.wait_take(id, WAIT).expect("batch reply")));

    // A mutating request: barrier-flushes the batcher, invalidates cache
    // shards, and changes every later reply's ground truth.
    let id = client.submit(&Request::Upload(upload.clone()));
    client.flush().expect("flush upload");
    replies.push((id, client.wait_take(id, WAIT).expect("upload reply")));

    // Same queries again: with the cache on these are warm repeats.
    for q in queries {
        let id = client.submit(&Request::Query(q.clone()));
        client.flush().expect("flush repeat");
        replies.push((id, client.wait_take(id, WAIT).expect("repeat reply")));
    }
    replies
}

#[test]
fn concurrent_clients_are_equivalent_to_sequential_service_calls() {
    const TCP_CLIENTS: usize = 4;
    const MEM_CLIENTS: usize = 2;
    let fx = fixture(TCP_CLIENTS + MEM_CLIENTS);

    for &batching in &[true, false] {
        for &cache in &[false, true] {
            let config = HubConfig {
                batching,
                batch_window: Duration::from_millis(2),
                batch_depth: 4,
                journal: true,
                ..HubConfig::default()
            };
            let hub = Hub::spawn(seeded_server(&fx, cache), config);
            let addr = hub.bind_tcp("127.0.0.1:0").expect("bind");

            // ≥ 4 concurrent socket clients plus the MemoryLink twin, each on
            // its own thread with a disjoint request-id range.
            let mut workers = Vec::new();
            for k in 0..TCP_CLIENTS + MEM_CLIENTS {
                let client = if k < TCP_CLIENTS {
                    NetClient::connect_tcp(addr).expect("connect")
                } else {
                    NetClient::from_memory(hub.connect_memory())
                }
                .with_first_request_id(k as u64 * 1_000_000 + 1);
                let queries = fx.queries.clone();
                let upload = fx.client_uploads[k].clone();
                workers.push(std::thread::spawn(move || {
                    run_client(client, &queries, &upload)
                }));
            }
            let mut received: Vec<(u64, Response)> = Vec::new();
            for worker in workers {
                received.extend(worker.join().expect("client thread"));
            }

            // After the concurrent phase: read the cumulative counters through
            // the hub. These go through the journal like everything else, so
            // the replay below asserts counter equality too.
            let mut admin =
                NetClient::from_memory(hub.connect_memory()).with_first_request_id(9_000_000);
            received.push((
                9_000_000,
                admin
                    .call(&Request::Counters, WAIT)
                    .expect("counters through the hub"),
            ));
            received.push((
                9_000_001,
                admin
                    .call(&Request::CacheStats, WAIT)
                    .expect("cache stats through the hub"),
            ));
            drop(admin);

            let report = hub.shutdown();
            let expected_requests =
                ((TCP_CLIENTS + MEM_CLIENTS) * (2 * fx.queries.len() + 2) + 2) as u64;
            assert_eq!(
                report.requests, expected_requests,
                "batching={batching} cache={cache}: every request must be executed"
            );
            assert_eq!(report.journal.len() as u64, report.requests);

            // Sequential replay on the twin: the hub's total execution order,
            // one plain Service::call at a time — no transport, no batcher.
            let mut twin = seeded_server(&fx, cache);
            let mut expected = std::collections::BTreeMap::new();
            for entry in &report.journal {
                let response = twin.call(entry.request.clone());
                expected.insert(entry.request_id, response);
            }

            assert_eq!(received.len() as u64, expected_requests);
            for (id, reply) in &received {
                let want = expected
                    .get(id)
                    .unwrap_or_else(|| panic!("request #{id} missing from the journal"));
                assert_eq!(
                    reply, want,
                    "batching={batching} cache={cache}: reply for request #{id} diverged"
                );
                assert_eq!(
                    reply_bytes(*id, reply),
                    reply_bytes(*id, want),
                    "batching={batching} cache={cache}: frame bytes for request #{id} diverged"
                );
            }
        }
    }
}

#[test]
fn shutdown_while_loaded_drains_every_accepted_request() {
    let fx = fixture(0);
    // A huge window and depth: nothing flushes until shutdown forces it.
    let config = HubConfig {
        batch_window: Duration::from_secs(10),
        batch_depth: 1 << 20,
        journal: true,
        ..HubConfig::default()
    };
    let hub = Hub::spawn(seeded_server(&fx, true), config);

    let mut clients: Vec<NetClient> = (0..3)
        .map(|k| {
            NetClient::from_memory(hub.connect_memory()).with_first_request_id(k as u64 * 1_000 + 1)
        })
        .collect();
    let mut ids = Vec::new();
    for client in clients.iter_mut() {
        for q in &fx.queries {
            ids.push(client.submit(&Request::Query(q.clone())));
        }
        client.flush().expect("flush");
    }
    let total = (3 * fx.queries.len()) as u64;
    while hub.frames_accepted() < total {
        std::thread::sleep(Duration::from_millis(1));
    }

    // Shut down with the whole load still pending in the batcher: the drain
    // must execute and answer every accepted request.
    let report = hub.shutdown();
    assert_eq!(report.requests, total, "no accepted request may be dropped");

    let mut twin = seeded_server(&fx, true);
    let mut expected = std::collections::BTreeMap::new();
    for entry in &report.journal {
        expected.insert(entry.request_id, twin.call(entry.request.clone()));
    }
    let mut taken = 0;
    for (k, client) in clients.iter_mut().enumerate() {
        for id in ids[k * fx.queries.len()..(k + 1) * fx.queries.len()].iter() {
            let reply = client.wait_take(*id, WAIT).expect("drained reply");
            assert_eq!(&reply, expected.get(id).expect("journaled"));
            taken += 1;
        }
    }
    assert_eq!(taken, total, "every client read every drained reply");
}
