//! The fleet oracle: a coordinator scatter-gathering over shard-server nodes
//! whose links die on **deterministic seeded byte budgets** — mid-query,
//! mid-failover, even during registration — and every reply a client
//! *completed* must still be byte-identical to a single sequential
//! `CloudServer` holding the whole corpus, replayed from the coordinator
//! hub's execution journal. Failover may cost retries and shard shipping; it
//! must never change an answer.
//!
//! On top of the equivalence oracle:
//!
//! - **Conservation** per client: `attempts == successes + sheds + link_faults`.
//! - **Corpus pinning**: after every failover, the *nodes'* summed document
//!   counts (`ServerInfo`) still equal the twin's — shard re-assignment
//!   restores the full corpus or the test fails.
//! - **At-most-once writes**: a forward that dies mid-flight fails the node
//!   over and re-ships from the mirror; the final document count proves no
//!   write ever applied twice.
//! - **Replayability**: the same seed reproduces the same kill schedule, the
//!   same failover accounting, and the same replies.

use mkse::core::{QueryBuilder, RankedDocumentIndex, SystemParams};
use mkse::net::{
    Connector, Coordinator, FaultHandle, FaultPlan, FaultyLink, FleetConfig, Hub, HubConfig,
    JournalEntry, MemoryDialer, NodeConfig, NodeError, NodeRunner, ResilienceStats,
    ResilientClient, RetryPolicy,
};
use mkse::protocol::{
    wire, CloudServer, DataOwner, DocumentRequest, NodeCapabilities, OwnerConfig, ProtocolError,
    QueryMessage, Request, Response, Service, UploadMessage,
};
use mkse::textproc::Document;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const GLOBAL_SHARDS: usize = 4;

struct Fixture {
    owner: DataOwner,
    queries: Vec<QueryMessage>,
    seed_upload: UploadMessage,
    /// A single-document upload (id 1000), never part of the seed corpus —
    /// the fleet-wide at-most-once probe.
    extra_upload: UploadMessage,
}

fn fixture() -> Fixture {
    let mut rng = StdRng::seed_from_u64(31_812);
    let mut owner = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
    let texts = [
        "cloud privacy search encryption audit trail",
        "weather forecast rain and wind patterns",
        "cloud storage pricing enterprise tiers",
        "encrypted archive migration cloud plan",
        "audit of encryption key management duty",
        "privacy impact assessment cloud data flows",
        "searchable encryption design notes draft",
        "cloud audit logging pipeline review",
        "key rotation schedule audit findings",
        "cloud migration runbook and checklist",
        "privacy review of search telemetry",
        "encryption at rest for cloud archives",
        "audit report on storage access paths",
        "cloud capacity forecast for search",
        "privacy preserving ranked retrieval",
        "encrypted index maintenance procedures",
    ];
    let docs: Vec<Document> = texts
        .iter()
        .enumerate()
        .map(|(i, t)| Document::from_text(i as u64, t))
        .collect();
    let (indices, encrypted) = owner.prepare_documents(&docs, &mut rng);
    let seed_upload = UploadMessage {
        indices,
        documents: encrypted,
    };
    let extra = Document::from_text(1000, "late arriving cloud audit notes under failover");
    let (indices, documents) = owner.prepare_documents(&[extra], &mut rng);
    let extra_upload = UploadMessage { indices, documents };

    let pool = owner.random_pool_trapdoors();
    let keyword_sets: [&[&str]; 4] = [&["cloud"], &["audit"], &["cloud", "audit"], &["privacy"]];
    let queries = keyword_sets
        .iter()
        .map(|kws| {
            let trapdoors = owner.scheme_keys().trapdoors_for(owner.params(), kws);
            let q = QueryBuilder::new(owner.params())
                .add_trapdoors(&trapdoors)
                .with_randomization(&pool)
                .build(&mut rng);
            QueryMessage {
                query: q.bits().clone(),
                top: None,
            }
        })
        .collect();
    Fixture {
        owner,
        queries,
        seed_upload,
        extra_upload,
    }
}

fn frame_len(request: &Request) -> u64 {
    wire::encode_request(1, request).len() as u64
}

/// The indices that land on the given global shards: round-robin placement
/// assigns upload position `i` to shard `i % GLOBAL_SHARDS`, so the
/// coordinator's per-node forward (and its failover ship of a shard's insert
/// journal) carries exactly these — which makes kill budgets computable to
/// the byte.
fn shard_slice(indices: &[RankedDocumentIndex], shards: &[usize]) -> Vec<RankedDocumentIndex> {
    indices
        .iter()
        .enumerate()
        .filter(|(i, _)| shards.contains(&(i % GLOBAL_SHARDS)))
        .map(|(_, idx)| idx.clone())
        .collect()
}

fn forward_len(indices: &[RankedDocumentIndex], shards: &[usize]) -> u64 {
    frame_len(&Request::Upload(UploadMessage {
        indices: shard_slice(indices, shards),
        documents: vec![],
    }))
}

fn clean_connector(dialer: MemoryDialer) -> Connector {
    Box::new(move |_ordinal| {
        let (reader, writer) = dialer.connect().split();
        Ok((Box::new(reader) as _, Box::new(writer) as _))
    })
}

/// Data-plane connector whose ordinal-0 link dies after `budget` written
/// bytes and whose every later link is dead on arrival — once the budget
/// fires, the node is gone for good (the "machine lost" model).
fn doomed_connector(
    dialer: MemoryDialer,
    budget: Option<u64>,
    seed: u64,
    handles: Arc<Mutex<Vec<FaultHandle>>>,
) -> Connector {
    Box::new(move |ordinal| {
        let (reader, writer) = dialer.connect().split();
        let Some(budget) = budget else {
            return Ok((Box::new(reader) as _, Box::new(writer) as _));
        };
        let plan = FaultPlan {
            kill_after_bytes: Some(if ordinal == 0 { budget } else { 0 }),
            ..FaultPlan::healthy(seed.wrapping_add(ordinal))
        };
        let (r, w, h) = FaultyLink::wrap(Box::new(reader), Box::new(writer), plan);
        handles.lock().unwrap().push(h);
        Ok((Box::new(r) as _, Box::new(w) as _))
    })
}

/// Connector that resolves the coordinator hub's dialer on first use, so
/// node runners can be spawned before the coordinator hub exists.
fn late_connector(slot: Arc<Mutex<Option<MemoryDialer>>>) -> Connector {
    Box::new(move |_ordinal| {
        let guard = slot.lock().unwrap();
        let dialer = guard
            .as_ref()
            .ok_or_else(|| std::io::Error::other("coordinator hub not up yet"))?;
        let (reader, writer) = dialer.connect().split();
        Ok((Box::new(reader) as _, Box::new(writer) as _))
    })
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        num_global_shards: GLOBAL_SHARDS,
        heartbeat_interval: Duration::from_millis(50),
        // Deaths in these tests come from dead links, never from the clock.
        failure_deadline: Duration::from_secs(120),
        node_policy: RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(200),
            backoff_cap: Duration::from_millis(2),
            attempt_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(30),
            retry_non_idempotent: false,
            jitter_per_mille: 250,
            jitter_seed: 0xF1EE7,
        },
    }
}

fn client_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 24,
        base_backoff: Duration::from_micros(500),
        backoff_cap: Duration::from_millis(10),
        attempt_timeout: Duration::from_secs(10),
        request_deadline: Duration::from_secs(60),
        retry_non_idempotent: false,
        jitter_per_mille: 250,
        jitter_seed: 31_812,
    }
}

fn assert_conservation(stats: &ResilienceStats, who: &str) {
    assert_eq!(
        stats.attempts,
        stats.successes + stats.sheds + stats.link_faults,
        "{who}: conservation law violated: {stats:?}"
    );
}

/// Replay the coordinator hub's journal on a sequential single-server twin.
/// Fleet-control traffic (registration, heartbeats, metrics) is coordinator
/// plumbing with no twin counterpart and no effect on index state; every
/// client-visible operation is replayed in execution order.
fn replay_journal(params: &SystemParams, journal: &[JournalEntry]) -> BTreeMap<u64, Response> {
    let mut twin = CloudServer::with_shards(params.clone(), GLOBAL_SHARDS);
    let mut expected = BTreeMap::new();
    for entry in journal {
        if matches!(
            entry.request,
            Request::RegisterNode(_) | Request::NodeHeartbeat(_) | Request::MetricsSnapshot
        ) {
            continue;
        }
        expected.insert(entry.request_id, twin.call(entry.request.clone()));
    }
    expected
}

fn assert_replies_match_replay(
    received: &[(u64, Response)],
    expected: &BTreeMap<u64, Response>,
    label: &str,
) {
    for (id, reply) in received {
        let want = expected
            .get(id)
            .unwrap_or_else(|| panic!("{label}: completed request #{id} missing from journal"));
        assert_eq!(reply, want, "{label}: reply for request #{id} diverged");
        assert_eq!(
            wire::encode_response(*id, reply),
            wire::encode_response(*id, want),
            "{label}: frame bytes for request #{id} diverged"
        );
    }
}

/// A running fleet: coordinator behind a journaling hub, node runners
/// registered through the wire, data links optionally doomed.
struct Fleet {
    hub: mkse::net::HubHandle,
    runners: Vec<NodeRunner>,
    telemetry: mkse::core::Telemetry,
    handles: Arc<Mutex<Vec<FaultHandle>>>,
}

/// `(node_id, shard_slots, kill_budget)` per node; `None` = clean link.
fn spawn_fleet(params: &SystemParams, nodes: &[(u64, u32, Option<u64>)], seed: u64) -> Fleet {
    let slot: Arc<Mutex<Option<MemoryDialer>>> = Arc::new(Mutex::new(None));
    let handles: Arc<Mutex<Vec<FaultHandle>>> = Arc::new(Mutex::new(Vec::new()));
    let runners: Vec<NodeRunner> = nodes
        .iter()
        .map(|&(node_id, shard_slots, _)| {
            NodeRunner::spawn(
                params.clone(),
                NodeConfig {
                    node_id,
                    local_shards: 2,
                    capabilities: NodeCapabilities {
                        shard_slots,
                        scan_lanes: 2,
                        cache_capacity: 0,
                    },
                    ..NodeConfig::default()
                },
                late_connector(slot.clone()),
            )
        })
        .collect();
    let mut coordinator = Coordinator::new(params.clone(), fleet_config());
    for (runner, &(node_id, _, budget)) in runners.iter().zip(nodes) {
        coordinator.add_node(
            node_id,
            doomed_connector(
                runner.dialer(),
                budget,
                seed.wrapping_add(node_id.wrapping_mul(0x9e37)),
                handles.clone(),
            ),
        );
    }
    let telemetry = coordinator.telemetry_handle();
    let hub = Hub::spawn(
        coordinator,
        HubConfig {
            journal: true,
            ..HubConfig::default()
        },
    );
    *slot.lock().unwrap() = Some(hub.memory_dialer());
    Fleet {
        hub,
        runners,
        telemetry,
        handles,
    }
}

fn counter(telemetry: &mkse::core::Telemetry, name: &str) -> u64 {
    telemetry.snapshot().counter(name)
}

fn gauge(telemetry: &mkse::core::Telemetry, name: &str) -> u64 {
    telemetry
        .snapshot()
        .gauges
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("gauge {name} missing"))
}

/// A node killed by its seeded byte budget mid-workload: two concurrent
/// clients complete 100% of their idempotent requests — queries, a late
/// non-idempotent upload, a document fetch — and every completed reply is
/// byte-identical to the sequential twin. The summed node document counts pin
/// the corpus after failover, proving re-assignment restored every shard.
#[test]
fn node_killed_mid_workload_completes_everything_twin_identical() {
    const CLIENTS: usize = 2;
    const ROUNDS: usize = 3;
    let fx = Arc::new(fixture());
    let params = fx.owner.params().clone();
    let q = frame_len(&Request::Query(fx.queries[0].clone()));
    // Node 1 serves shards {0,1}: its data link survives the seed-upload
    // forward plus six query frames, then the machine is lost.
    let budget1 = forward_len(&fx.seed_upload.indices, &[0, 1]) + 6 * q + q / 2;
    let fleet = spawn_fleet(
        &params,
        &[(1, 2, Some(budget1)), (2, 1, None), (3, 0, None)],
        0xC0FFEE,
    );
    let mut runners = fleet.runners;
    assert_eq!(runners[0].register().expect("node 1").shards, vec![0, 1]);
    assert_eq!(runners[1].register().expect("node 2").shards, vec![2]);
    assert_eq!(runners[2].register().expect("node 3").shards, vec![3]);

    // Seed the corpus through the coordinator (forwards fan out per node).
    let mut seeder =
        ResilientClient::new(clean_connector(fleet.hub.memory_dialer()), client_policy())
            .with_first_request_id(9_000_001);
    let uploaded = seeder
        .call(&Request::Upload(fx.seed_upload.clone()))
        .expect("seed upload");
    assert!(matches!(uploaded, Response::Uploaded { .. }));

    let mut workers = Vec::new();
    for k in 0..CLIENTS {
        let dialer = fleet.hub.memory_dialer();
        let fx = fx.clone();
        workers.push(std::thread::spawn(move || {
            let mut client = ResilientClient::new(clean_connector(dialer), client_policy())
                .with_first_request_id(k as u64 * 1_000_000 + 1);
            let mut received = Vec::new();
            for round in 0..ROUNDS {
                for query in fx.queries.iter() {
                    let (id, reply) = client
                        .call_traced(&Request::Query(query.clone()))
                        .expect("queries are idempotent and must survive failover");
                    assert!(matches!(reply, Response::Search(_)), "got {reply:?}");
                    received.push((id, reply));
                }
                if k == 0 && round == 0 {
                    // The at-most-once probe: a non-idempotent write lands
                    // exactly once even if its internal forward dies.
                    let (id, reply) = client
                        .call_traced(&Request::Upload(fx.extra_upload.clone()))
                        .expect("the client-side link is clean");
                    received.push((id, reply));
                }
                if k == 0 && round == 1 {
                    let (id, reply) = client
                        .call_traced(&Request::Documents(DocumentRequest {
                            document_ids: vec![0, 5, 1000],
                        }))
                        .expect("documents are served by the coordinator");
                    assert!(matches!(reply, Response::Documents(_)), "got {reply:?}");
                    received.push((id, reply));
                }
            }
            (received, client.stats())
        }));
    }
    let mut all_received = Vec::new();
    for (k, worker) in workers.into_iter().enumerate() {
        let (received, stats) = worker.join().expect("client thread");
        assert_conservation(&stats, &format!("client {k}"));
        assert_eq!(stats.link_faults, 0, "client links are clean");
        all_received.extend(received);
    }

    // Node 1 is gone; the survivors carry its shards and the whole corpus.
    let (id, info) = seeder
        .call_traced(&Request::ServerInfo)
        .expect("server info");
    match &info {
        Response::Info(i) => assert_eq!(
            i.documents,
            fx.seed_upload.indices.len() as u64 + 1,
            "corpus pinned: nodes' summed documents match seed + probe"
        ),
        other => panic!("unexpected reply {other:?}"),
    }
    all_received.push((id, info));
    assert_conservation(&seeder.stats(), "seeder");

    assert_eq!(counter(&fleet.telemetry, "failovers"), 1);
    assert_eq!(counter(&fleet.telemetry, "shards_reassigned"), 2);
    assert_eq!(counter(&fleet.telemetry, "heartbeats_missed"), 0);
    assert_eq!(gauge(&fleet.telemetry, "nodes_live"), 2);
    assert_eq!(gauge(&fleet.telemetry, "nodes_registered"), 3);
    let faults: u64 = fleet
        .handles
        .lock()
        .unwrap()
        .iter()
        .map(|h| h.faults())
        .sum();
    assert!(faults >= 1, "the kill budget must actually fire");

    // Live nodes still beat; the dead one is told to re-register.
    assert!(runners[1].heartbeat().is_ok());
    assert!(runners[2].heartbeat().is_ok());
    assert!(matches!(
        runners[0].heartbeat(),
        Err(NodeError::Refused(ProtocolError::Unsupported(_)))
    ));

    let report = fleet.hub.shutdown();
    assert_eq!(report.sheds, 0);
    let expected = replay_journal(&params, &report.journal);
    assert_replies_match_replay(&all_received, &expected, "mid-workload kill");
    for runner in runners {
        runner.shutdown();
    }
}

/// A survivor that dies *while receiving the failover shipment*: node 1's
/// budget fires mid-query and its shards must re-home. The first pick is
/// node 3 — registered last, granted nothing, so the shipment is the first
/// byte it ever receives and its budget (half the ship frame) kills it
/// mid-shipment. The cascade retries onto node 2, which ends up holding
/// everything. Two failovers, one of them mid-failover, and every completed
/// reply still matches the twin.
#[test]
fn survivor_killed_mid_failover_cascades_to_the_last_node() {
    const ROUNDS: usize = 2;
    let fx = fixture();
    let params = fx.owner.params().clone();
    let q = frame_len(&Request::Query(fx.queries[0].clone()));
    // Node 1 ({0,1}): dies on its third query frame.
    let budget1 = forward_len(&fx.seed_upload.indices, &[0, 1]) + 2 * q + q / 2;
    // Node 3 (empty): the failover ship of shard 0 — its insert journal as
    // one upload frame — is the first traffic on its link; half of it is a
    // mid-frame kill by construction.
    let ship0 = forward_len(&fx.seed_upload.indices, &[0]);
    let fleet = spawn_fleet(
        &params,
        &[(1, 2, Some(budget1)), (2, 0, None), (3, 0, Some(ship0 / 2))],
        0xDEAD,
    );
    let mut runners = fleet.runners;
    assert_eq!(runners[0].register().expect("node 1").shards, vec![0, 1]);
    assert_eq!(runners[1].register().expect("node 2").shards, vec![2, 3]);
    assert_eq!(
        runners[2].register().expect("node 3").shards,
        Vec::<u32>::new(),
        "node 3 joins after every shard is owned: the fewest-shards failover \
         target by construction"
    );

    let mut client =
        ResilientClient::new(clean_connector(fleet.hub.memory_dialer()), client_policy())
            .with_first_request_id(1);
    let mut received = Vec::new();
    let (id, reply) = client
        .call_traced(&Request::Upload(fx.seed_upload.clone()))
        .expect("seed upload");
    assert!(matches!(reply, Response::Uploaded { .. }));
    received.push((id, reply));
    for _ in 0..ROUNDS {
        for query in fx.queries.iter() {
            let (id, reply) = client
                .call_traced(&Request::Query(query.clone()))
                .expect("queries survive the cascade");
            received.push((id, reply));
        }
    }
    let (id, info) = client.call_traced(&Request::ServerInfo).expect("info");
    match &info {
        Response::Info(i) => assert_eq!(i.documents, fx.seed_upload.indices.len() as u64),
        other => panic!("unexpected reply {other:?}"),
    }
    received.push((id, info));
    assert_conservation(&client.stats(), "client");

    assert_eq!(
        counter(&fleet.telemetry, "failovers"),
        2,
        "node 1's death plus node 3's death mid-shipment"
    );
    assert_eq!(
        counter(&fleet.telemetry, "shards_reassigned"),
        2,
        "shards 0 and 1 re-homed onto node 2 after the cascade (node 3 died \
         holding nothing)"
    );
    assert_eq!(gauge(&fleet.telemetry, "nodes_live"), 1);
    assert_eq!(
        runners[1].heartbeat().expect("last node standing").shards,
        vec![0, 1, 2, 3]
    );

    let report = fleet.hub.shutdown();
    let expected = replay_journal(&params, &report.journal);
    assert_replies_match_replay(&received, &expected, "mid-failover cascade");
    for runner in runners {
        runner.shutdown();
    }
}

/// A node whose data link is dead on arrival fails *during registration*:
/// the shard shipment is refused, the registration answers a typed error,
/// and the rest of the fleet serves the full corpus untouched.
#[test]
fn node_killed_during_registration_is_refused_and_fleet_serves_on() {
    let fx = fixture();
    let params = fx.owner.params().clone();
    let fleet = spawn_fleet(&params, &[(1, 0, Some(0)), (2, 0, None)], 0xBEEF);
    let mut runners = fleet.runners;

    // The corpus arrives before any node: it lives in the coordinator's
    // mirror and ships at registration time — straight into the dead link.
    let mut client =
        ResilientClient::new(clean_connector(fleet.hub.memory_dialer()), client_policy())
            .with_first_request_id(1);
    let mut received = Vec::new();
    let (id, reply) = client
        .call_traced(&Request::Upload(fx.seed_upload.clone()))
        .expect("seed upload");
    assert!(matches!(reply, Response::Uploaded { .. }));
    received.push((id, reply));

    assert!(
        matches!(
            runners[0].register(),
            Err(NodeError::Refused(ProtocolError::Unsupported(_)))
        ),
        "registration over a dead data link must fail visibly"
    );
    assert_eq!(
        runners[1].register().expect("healthy node").shards,
        vec![0, 1, 2, 3]
    );
    for query in fx.queries.iter() {
        let (id, reply) = client
            .call_traced(&Request::Query(query.clone()))
            .expect("the healthy node serves everything");
        received.push((id, reply));
    }
    let (id, info) = client.call_traced(&Request::ServerInfo).expect("info");
    match &info {
        Response::Info(i) => assert_eq!(i.documents, fx.seed_upload.indices.len() as u64),
        other => panic!("unexpected reply {other:?}"),
    }
    received.push((id, info));

    assert_eq!(counter(&fleet.telemetry, "failovers"), 1);
    assert_eq!(counter(&fleet.telemetry, "shards_reassigned"), 0);
    assert_eq!(gauge(&fleet.telemetry, "nodes_live"), 1);

    let report = fleet.hub.shutdown();
    let expected = replay_journal(&params, &report.journal);
    assert_replies_match_replay(&received, &expected, "registration kill");
    for runner in runners {
        runner.shutdown();
    }
}

/// The same seed reproduces the same fleet run: identical kill schedule,
/// identical failover accounting (the full coordinator metrics snapshot),
/// identical client stats, identical replies.
#[test]
fn same_seed_reproduces_the_same_failover_schedule() {
    let fx = Arc::new(fixture());
    let params = fx.owner.params().clone();

    let run = |seed: u64| -> (
        ResilienceStats,
        Vec<Response>,
        mkse::core::MetricsSnapshot,
        Vec<Vec<mkse::net::FaultEvent>>,
    ) {
        let q = frame_len(&Request::Query(fx.queries[0].clone()));
        let budget1 = forward_len(&fx.seed_upload.indices, &[0, 1]) + 2 * q + q / 2;
        let fleet = spawn_fleet(
            &params,
            &[(1, 2, Some(budget1)), (2, 1, None), (3, 0, None)],
            seed,
        );
        let mut runners = fleet.runners;
        for runner in runners.iter_mut() {
            runner.register().expect("registration");
        }
        let mut client =
            ResilientClient::new(clean_connector(fleet.hub.memory_dialer()), client_policy())
                .with_first_request_id(1);
        let mut replies = Vec::new();
        replies.push(
            client
                .call(&Request::Upload(fx.seed_upload.clone()))
                .expect("seed upload"),
        );
        for _ in 0..2 {
            for query in fx.queries.iter() {
                replies.push(
                    client
                        .call(&Request::Query(query.clone()))
                        .expect("completes"),
                );
            }
        }
        replies.push(client.call(&Request::ServerInfo).expect("info"));
        let stats = client.stats();
        let snapshot = fleet.telemetry.snapshot();
        drop(client);
        fleet.hub.shutdown();
        for runner in runners {
            runner.shutdown();
        }
        let logs = fleet
            .handles
            .lock()
            .unwrap()
            .iter()
            .map(|h| h.log())
            .collect();
        (stats, replies, snapshot, logs)
    };

    let (stats_a, replies_a, metrics_a, logs_a) = run(0xA11CE);
    let (stats_b, replies_b, metrics_b, logs_b) = run(0xA11CE);
    assert!(
        logs_a
            .iter()
            .any(|log: &Vec<mkse::net::FaultEvent>| !log.is_empty()),
        "the kill schedule must actually fire"
    );
    assert_eq!(stats_a, stats_b, "same seed, same client accounting");
    assert_eq!(replies_a, replies_b, "same seed, same replies");
    assert_eq!(
        metrics_a, metrics_b,
        "same seed, same failover stats (counters, gauges)"
    );
    assert_eq!(logs_a, logs_b, "same seed, same fault schedule");

    let (_, replies_c, metrics_c, _) = run(0xB0B);
    assert_eq!(
        replies_a, replies_c,
        "a different seed may change the schedule, never an answer"
    );
    assert_eq!(
        metrics_c.counter("failovers"),
        metrics_a.counter("failovers"),
        "the byte budget, not the seed, decides the kill"
    );
}
