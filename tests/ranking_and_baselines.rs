//! Integration: the §5 ranking method against the Eq. (4) baseline, and the Cao et al. MRSE
//! baseline against ground truth — the cross-crate checks behind experiments E1 and E9.

use mkse::baselines::metrics::RankingComparison;
use mkse::baselines::relevance::RelevanceRanker;
use mkse::baselines::MrseScheme;
use mkse::core::{CloudIndex, DocumentIndexer, QueryBuilder, SchemeKeys, SystemParams};
use mkse::textproc::corpus::RankingWorkload;
use mkse::textproc::dictionary::Dictionary;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn level_ranking_tracks_the_relevance_score_baseline() {
    // A scaled-down §5 workload: the MKSE ranking must place the reference method's best
    // document into its top 3 and overlap substantially in the top 5, trial after trial.
    let params = SystemParams::with_five_levels();
    let mut rng = StdRng::seed_from_u64(11);
    let mut comparison = RankingComparison::new();

    for _ in 0..5 {
        let workload = RankingWorkload::generate_with(&mut rng, 200, 3, 40, 10, (1, 15));
        let keys = SchemeKeys::generate(&params, &mut rng);
        let indexer = DocumentIndexer::new(&params, &keys);
        let mut cloud = CloudIndex::new(params.clone());
        cloud
            .insert_all(indexer.index_documents(&workload.corpus.documents))
            .expect("upload");

        let kws: Vec<&str> = workload.query_keywords.iter().map(|s| s.as_str()).collect();
        let trapdoors = keys.trapdoors_for(&params, &kws);
        let pool = keys.random_pool_trapdoors(&params);
        let query = QueryBuilder::new(&params)
            .add_trapdoors(&trapdoors)
            .with_randomization(&pool)
            .build(&mut rng);

        let truth: std::collections::HashSet<u64> =
            workload.full_match_ids.iter().copied().collect();
        let mkse_ranking: Vec<u64> = cloud
            .search(&query)
            .into_iter()
            .filter(|m| truth.contains(&m.document_id))
            .map(|m| m.document_id)
            .collect();
        // Completeness: all true full matches are present in the ranked result.
        assert_eq!(mkse_ranking.len(), workload.full_match_ids.len());

        let full_docs: Vec<_> = workload
            .corpus
            .documents
            .iter()
            .filter(|d| truth.contains(&d.id))
            .cloned()
            .collect();
        let ranker = RelevanceRanker::from_documents_with_length(
            &workload.corpus.documents,
            Some(workload.document_length),
        );
        let reference: Vec<u64> = ranker
            .rank(&kws, &full_docs)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        comparison.record(&reference, &mkse_ranking);
    }

    // Loose bounds (the paper reports 100% and ~80% on the full-size workload).
    assert!(
        comparison.top1_in_top3_rate() >= 0.6,
        "top1-in-top3 rate {:.2}",
        comparison.top1_in_top3_rate()
    );
    assert!(
        comparison.four_of_top5_rate() >= 0.4,
        "4-of-top5 rate {:.2}",
        comparison.four_of_top5_rate()
    );
}

#[test]
fn mrse_baseline_ranks_by_number_of_matching_keywords() {
    // The secure kNN construction must reproduce plaintext inner-product ranking exactly when
    // the ε noise is disabled — that property is what makes it a fair efficiency baseline.
    let mut rng = StdRng::seed_from_u64(13);
    let dictionary = Dictionary::from_words((0..50).map(|i| format!("w{i}")));
    let scheme = MrseScheme::new(dictionary).with_epsilon(0.0);
    let key = scheme.generate_key(&mut rng);

    let docs: Vec<(u64, Vec<String>)> = (0..10u64)
        .map(|id| {
            let kws: Vec<String> = (0..=id).map(|k| format!("w{k}")).collect();
            (id, kws)
        })
        .collect();
    let indices: Vec<_> = docs
        .iter()
        .map(|(id, kws)| {
            let refs: Vec<&str> = kws.iter().map(|s| s.as_str()).collect();
            scheme.build_index(&key, *id, &refs, &mut rng)
        })
        .collect();

    // Query for w0..w9: document id i matches exactly i+1 of them, so the ranking must be
    // 9, 8, 7, … in that order.
    let query_kws: Vec<String> = (0..10).map(|i| format!("w{i}")).collect();
    let refs: Vec<&str> = query_kws.iter().map(|s| s.as_str()).collect();
    let trapdoor = scheme.trapdoor(&key, &refs, &mut rng);
    let ranked = scheme.search(&indices, &trapdoor, 10);
    let ids: Vec<u64> = ranked.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, vec![9, 8, 7, 6, 5, 4, 3, 2, 1, 0]);
}

#[test]
fn mkse_and_mrse_agree_on_which_documents_are_relevant() {
    // Cross-validation of the two schemes over the same corpus: the documents MKSE returns for
    // a conjunctive query are exactly the documents MRSE scores highest (they contain all the
    // queried keywords).
    let mut rng = StdRng::seed_from_u64(17);
    let params = SystemParams::default();
    let keys = SchemeKeys::generate(&params, &mut rng);
    let indexer = DocumentIndexer::new(&params, &keys);

    let vocabulary: Vec<String> = (0..60).map(|i| format!("word{i:02}")).collect();
    let dictionary = Dictionary::from_words(vocabulary.iter().cloned());
    let mrse = MrseScheme::new(dictionary).with_epsilon(0.0);
    let mrse_key = mrse.generate_key(&mut rng);

    // Ten documents with known keyword sets; documents 3 and 7 contain both query keywords.
    let mut cloud = CloudIndex::new(params.clone());
    let mut mrse_indices = Vec::new();
    for id in 0..10u64 {
        let mut kws: Vec<&str> = vec![vocabulary[(id as usize * 3) % 60].as_str()];
        if id == 3 || id == 7 {
            kws = vec!["word10", "word20"];
        }
        cloud
            .insert(indexer.index_keywords(id, &kws))
            .expect("upload");
        mrse_indices.push(mrse.build_index(&mrse_key, id, &kws, &mut rng));
    }

    let query_kws = ["word10", "word20"];
    let trapdoors = keys.trapdoors_for(&params, &query_kws);
    let query = QueryBuilder::new(&params)
        .add_trapdoors(&trapdoors)
        .build(&mut rng);
    let mut mkse_hits = cloud.search_unranked(&query);
    mkse_hits.sort_unstable();

    let mrse_trapdoor = mrse.trapdoor(&mrse_key, &query_kws, &mut rng);
    let mut mrse_top: Vec<u64> = mrse
        .search(&mrse_indices, &mrse_trapdoor, 2)
        .into_iter()
        .map(|(id, _)| id)
        .collect();
    mrse_top.sort_unstable();

    assert_eq!(mkse_hits, vec![3, 7]);
    assert_eq!(mrse_top, vec![3, 7]);
}
