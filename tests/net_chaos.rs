//! The resilience oracle: N `ResilientClient`s drive one hub through
//! **deterministic seeded fault plans** — links that die after a byte budget,
//! tear writes into prefixes, delay deliveries, flip bits — and everything a
//! client *completed* must still be byte-identical to the sequential twin
//! replaying the hub's execution journal. Chaos may cost retries and
//! reconnects; it must never change an answer.
//!
//! Three more laws are asserted on top of the equivalence oracle:
//!
//! - **Conservation**: per client, `attempts == successes + sheds +
//!   link_faults` — every attempt is accounted to exactly one outcome.
//! - **At-most-once**: a non-idempotent request that dies mid-flight is
//!   *never* silently resubmitted; server-side document counts prove the
//!   upload executed zero times (refused, typed `RetryUnsafe`) or exactly
//!   once (explicit at-least-once opt-in), and duplicates are *visible*
//!   server-side errors, never silent double-applies.
//! - **Replayability**: the same fault seed reproduces the same fault
//!   schedule, the same attempt accounting, and the same replies.

use mkse::core::QueryBuilder;
use mkse::net::{
    Connector, FaultEvent, FaultHandle, FaultPlan, FaultyLink, Hub, HubConfig, HubHandle,
    MemoryDialer, ResilienceStats, ResilientClient, RetryPolicy,
};
use mkse::protocol::{
    wire, CloudServer, DataOwner, OwnerConfig, ProtocolError, QueryMessage, Request, Response,
    Service, UploadMessage,
};
use mkse::textproc::Document;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

struct Fixture {
    owner: DataOwner,
    queries: Vec<QueryMessage>,
    seed_upload: UploadMessage,
    /// An extra single-document upload (document id 1000), never part of the
    /// seed corpus — the at-most-once probe.
    extra_upload: UploadMessage,
}

fn fixture() -> Fixture {
    let mut rng = StdRng::seed_from_u64(20812);
    let mut owner = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
    let texts = [
        "cloud privacy search encryption audit",
        "weather forecast rain and wind",
        "cloud storage pricing enterprise",
        "encrypted archive migration cloud",
        "audit of encryption key management",
        "privacy impact assessment cloud data",
        "searchable encryption design notes",
        "cloud audit logging pipeline",
    ];
    let docs: Vec<Document> = texts
        .iter()
        .enumerate()
        .map(|(i, t)| Document::from_text(i as u64, t))
        .collect();
    let (indices, encrypted) = owner.prepare_documents(&docs, &mut rng);
    let seed_upload = UploadMessage {
        indices,
        documents: encrypted,
    };
    let extra = Document::from_text(1000, "late arriving cloud audit notes under chaos");
    let (indices, documents) = owner.prepare_documents(&[extra], &mut rng);
    let extra_upload = UploadMessage { indices, documents };

    let pool = owner.random_pool_trapdoors();
    let keyword_sets: [&[&str]; 4] = [&["cloud"], &["audit"], &["cloud", "audit"], &["privacy"]];
    let queries = keyword_sets
        .iter()
        .map(|kws| {
            let trapdoors = owner.scheme_keys().trapdoors_for(owner.params(), kws);
            let q = QueryBuilder::new(owner.params())
                .add_trapdoors(&trapdoors)
                .with_randomization(&pool)
                .build(&mut rng);
            QueryMessage {
                query: q.bits().clone(),
                top: None,
            }
        })
        .collect();
    Fixture {
        owner,
        queries,
        seed_upload,
        extra_upload,
    }
}

/// An identically-initialized server: same params, shards, seed corpus and
/// cache setting as the one the hub owns.
fn seeded_server(fx: &Fixture, cache: bool) -> CloudServer {
    let mut server = CloudServer::with_shards(fx.owner.params().clone(), 2);
    server
        .upload(
            fx.seed_upload.indices.clone(),
            fx.seed_upload.documents.clone(),
        )
        .expect("seed upload");
    if cache {
        server.enable_result_cache(64);
    }
    server
}

/// A connector over the hub's in-process dialer that wraps every fresh
/// connection in a [`FaultyLink`] with a per-ordinal plan, collecting the
/// fault handles for later inspection.
fn chaos_connector(
    dialer: MemoryDialer,
    mut plan_for: impl FnMut(u64) -> FaultPlan + Send + 'static,
    handles: Arc<Mutex<Vec<FaultHandle>>>,
) -> Connector {
    Box::new(move |ordinal| {
        let (reader, writer) = dialer.connect().split();
        let (r, w, h) = FaultyLink::wrap(Box::new(reader), Box::new(writer), plan_for(ordinal));
        handles.lock().unwrap().push(h);
        Ok((Box::new(r), Box::new(w)))
    })
}

/// A connector with no fault wrapper at all.
fn clean_connector(dialer: MemoryDialer) -> Connector {
    Box::new(move |_ordinal| {
        let (reader, writer) = dialer.connect().split();
        Ok((Box::new(reader), Box::new(writer)))
    })
}

fn chaos_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 24,
        base_backoff: Duration::from_micros(500),
        backoff_cap: Duration::from_millis(10),
        attempt_timeout: Duration::from_secs(3),
        request_deadline: Duration::from_secs(60),
        retry_non_idempotent: false,
        // Seeded jitter: deterministic per seed, so the same-seed
        // reproducibility oracle below still holds bit-for-bit.
        jitter_per_mille: 250,
        jitter_seed: 20812,
    }
}

fn assert_conservation(stats: &ResilienceStats, who: &str) {
    assert_eq!(
        stats.attempts,
        stats.successes + stats.sheds + stats.link_faults,
        "{who}: conservation law violated: {stats:?}"
    );
}

/// Replay the hub journal on a twin and return the expected reply per
/// request id.
fn replay_journal(
    fx: &Fixture,
    cache: bool,
    journal: &[mkse::net::JournalEntry],
) -> BTreeMap<u64, Response> {
    let mut twin = seeded_server(fx, cache);
    let mut expected = BTreeMap::new();
    for entry in journal {
        expected.insert(entry.request_id, twin.call(entry.request.clone()));
    }
    expected
}

fn assert_replies_match_replay(
    received: &[(u64, Response)],
    expected: &BTreeMap<u64, Response>,
    label: &str,
) {
    for (id, reply) in received {
        let want = expected
            .get(id)
            .unwrap_or_else(|| panic!("{label}: completed request #{id} missing from journal"));
        assert_eq!(reply, want, "{label}: reply for request #{id} diverged");
        assert_eq!(
            wire::encode_response(*id, reply),
            wire::encode_response(*id, want),
            "{label}: frame bytes for request #{id} diverged"
        );
    }
}

/// Config A — kills, tears, delays (no corruption), cache off. Every client
/// completes its whole workload despite dying links, and every completed
/// reply is byte-identical to the sequential twin. Since a torn write is a
/// strict prefix and a kill truncates, no fault can manufacture a *different
/// valid* request — so the replies are also identical across clients and
/// rounds.
#[test]
fn killed_and_torn_links_never_change_completed_replies() {
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 3;
    let fx = Arc::new(fixture());
    let config = HubConfig {
        batch_window: Duration::from_millis(2),
        batch_depth: 4,
        journal: true,
        ..HubConfig::default()
    };
    let hub = Hub::spawn(seeded_server(&fx, false), config);
    // Kill each connection after roughly three query frames, so every client
    // is guaranteed to lose links mid-run and reconnect.
    let frame_len = wire::encode_request(1, &Request::Query(fx.queries[0].clone())).len() as u64;
    let kill_budget = frame_len * 3 + frame_len / 2;

    let mut workers = Vec::new();
    for k in 0..CLIENTS {
        let dialer = hub.memory_dialer();
        let fx = fx.clone();
        let handles = Arc::new(Mutex::new(Vec::new()));
        let sink = handles.clone();
        workers.push(std::thread::spawn(move || {
            let connector = chaos_connector(
                dialer,
                move |ordinal| FaultPlan {
                    kill_after_bytes: Some(kill_budget),
                    torn_write_per_mille: 60,
                    delay_per_mille: 80,
                    max_delay_micros: 200,
                    ..FaultPlan::healthy(0xC0FFEE + k as u64 * 1013 + ordinal)
                },
                sink,
            );
            let mut client = ResilientClient::new(connector, chaos_policy())
                .with_first_request_id(k as u64 * 1_000_000 + 1);
            let mut received = Vec::new();
            for _ in 0..ROUNDS {
                for q in fx.queries.iter() {
                    let (id, reply) = client
                        .call_traced(&Request::Query(q.clone()))
                        .expect("idempotent query must survive chaos");
                    received.push((id, reply));
                }
            }
            let faults: u64 = handles.lock().unwrap().iter().map(|h| h.faults()).sum();
            (received, client.stats(), faults)
        }));
    }

    let mut all_received = Vec::new();
    let mut per_client: Vec<Vec<Response>> = Vec::new();
    for (k, worker) in workers.into_iter().enumerate() {
        let (received, stats, faults) = worker.join().expect("client thread");
        assert_conservation(&stats, &format!("client {k}"));
        assert_eq!(stats.sheds, 0, "no budget pressure in this scenario");
        assert!(
            stats.reconnects >= 1,
            "client {k}: the kill budget must have fired at least once: {stats:?}"
        );
        assert!(faults >= 1, "client {k}: no fault ever injected");
        assert_eq!(
            received.len(),
            ROUNDS * fx.queries.len(),
            "client {k} completed its whole workload"
        );
        per_client.push(received.iter().map(|(_, r)| r.clone()).collect());
        all_received.extend(received);
    }

    let report = hub.shutdown();
    assert_eq!(report.sheds, 0);
    let expected = replay_journal(&fx, false, &report.journal);
    assert_replies_match_replay(&all_received, &expected, "config A");

    // Queries-only workload over constant state: every client, every round,
    // must see the *same* reply for the same query.
    for client_replies in per_client.iter().skip(1) {
        assert_eq!(
            client_replies, &per_client[0],
            "clients diverged on identical queries"
        );
    }
}

/// Config B — adds write-path bit corruption, with the result cache on. A
/// corrupted frame may decode as garbage (typed codec error, connection
/// poisoned) or even as a *different valid request* (which then executes and
/// is journaled as what actually ran) — either way, every reply a client
/// completed must match the sequential twin replaying the journal.
#[test]
fn corrupting_links_with_cache_keep_journal_equivalence() {
    const CLIENTS: usize = 3;
    const ROUNDS: usize = 3;
    let fx = Arc::new(fixture());
    let config = HubConfig {
        batch_window: Duration::from_millis(2),
        batch_depth: 4,
        journal: true,
        // A corrupted length prefix can leave the reader waiting for bytes
        // that will never come; reap it quickly.
        idle_timeout: Duration::from_millis(300),
        ..HubConfig::default()
    };
    let hub = Hub::spawn(seeded_server(&fx, true), config);

    let mut workers = Vec::new();
    for k in 0..CLIENTS {
        let dialer = hub.memory_dialer();
        let fx = fx.clone();
        let handles = Arc::new(Mutex::new(Vec::new()));
        let sink = handles.clone();
        workers.push(std::thread::spawn(move || {
            let connector = chaos_connector(
                dialer,
                move |ordinal| FaultPlan {
                    corrupt_write_per_mille: 40,
                    torn_write_per_mille: 30,
                    ..FaultPlan::healthy(0xBADC0DE + k as u64 * 733 + ordinal)
                },
                sink,
            );
            let policy = RetryPolicy {
                // Lost replies (corrupted request ids) should be declared
                // dead quickly, not after seconds.
                attempt_timeout: Duration::from_millis(700),
                ..chaos_policy()
            };
            let mut client = ResilientClient::new(connector, policy)
                .with_first_request_id(k as u64 * 1_000_000 + 1);
            let mut received = Vec::new();
            let mut give_ups = 0u64;
            for _ in 0..ROUNDS {
                for q in fx.queries.iter() {
                    match client.call_traced(&Request::Query(q.clone())) {
                        Ok((id, reply)) => received.push((id, reply)),
                        // A query can exhaust its (generous) budget under
                        // sustained corruption; that is a visible failure,
                        // never a wrong answer.
                        Err(_) => give_ups += 1,
                    }
                }
            }
            (received, client.stats(), give_ups)
        }));
    }

    let mut all_received = Vec::new();
    let mut completed = 0u64;
    for (k, worker) in workers.into_iter().enumerate() {
        let (received, stats, give_ups) = worker.join().expect("client thread");
        assert_conservation(&stats, &format!("client {k}"));
        assert_eq!(
            received.len() as u64 + give_ups,
            (ROUNDS * fx.queries.len()) as u64
        );
        completed += received.len() as u64;
        all_received.extend(received);
    }
    assert!(
        completed > 0,
        "corruption rate is mild; most calls complete"
    );

    let report = hub.shutdown();
    let expected = replay_journal(&fx, true, &report.journal);
    assert_replies_match_replay(&all_received, &expected, "config B");
}

/// The same fault seed reproduces the same chaos run: identical fault event
/// schedule, identical attempt accounting, identical replies.
#[test]
fn same_seed_reproduces_the_same_fault_schedule() {
    let fx = Arc::new(fixture());

    let run = |fx: &Fixture| -> (ResilienceStats, Vec<Vec<FaultEvent>>, Vec<Response>) {
        let config = HubConfig {
            batch_window: Duration::from_millis(2),
            journal: false,
            ..HubConfig::default()
        };
        let hub = Hub::spawn(seeded_server(fx, false), config);
        let frame_len =
            wire::encode_request(1, &Request::Query(fx.queries[0].clone())).len() as u64;
        let handles = Arc::new(Mutex::new(Vec::new()));
        let connector = chaos_connector(
            hub.memory_dialer(),
            // No delays: the write-path schedule depends only on the op
            // sequence, which this single-threaded workload fixes exactly.
            move |ordinal| FaultPlan {
                kill_after_bytes: Some(frame_len * 2 + 7),
                torn_write_per_mille: 150,
                ..FaultPlan::healthy(7u64.wrapping_mul(0x9e37_79b9).wrapping_add(ordinal))
            },
            handles.clone(),
        );
        let mut client = ResilientClient::new(connector, chaos_policy());
        let mut replies = Vec::new();
        for _ in 0..3 {
            for q in fx.queries.iter() {
                replies.push(client.call(&Request::Query(q.clone())).expect("completes"));
            }
        }
        let stats = client.stats();
        drop(client);
        drop(hub.shutdown());
        let logs = handles.lock().unwrap().iter().map(|h| h.log()).collect();
        (stats, logs, replies)
    };

    let (stats_a, logs_a, replies_a) = run(&fx);
    let (stats_b, logs_b, replies_b) = run(&fx);
    assert!(
        logs_a.iter().any(|log| !log.is_empty()),
        "the plan must actually fire"
    );
    assert_eq!(stats_a, stats_b, "same seed, same attempt accounting");
    assert_eq!(logs_a, logs_b, "same seed, same fault schedule");
    assert_eq!(replies_a, replies_b, "same seed, same replies");
}

/// At-most-once, proven server-side: an upload whose link dies mid-flight is
/// refused (`RetryUnsafe`) and the document count shows it never executed;
/// with the explicit at-least-once opt-in it executes exactly once; and a
/// genuine duplicate is a *visible* server-side rejection, never a silent
/// double-apply.
#[test]
fn non_idempotent_requests_are_never_silently_duplicated() {
    let fx = fixture();
    let seed_docs = fx.seed_upload.indices.len() as u64;
    let config = HubConfig {
        journal: true,
        ..HubConfig::default()
    };
    let hub = Hub::spawn(seeded_server(&fx, false), config);

    let documents_on_server = |hub: &HubHandle| -> u64 {
        let mut probe =
            ResilientClient::new(clean_connector(hub.memory_dialer()), RetryPolicy::default())
                .with_first_request_id(9_000_000);
        match probe.call(&Request::ServerInfo).expect("server info") {
            Response::Info(info) => info.documents,
            other => panic!("unexpected reply {other:?}"),
        }
    };

    // Without opt-in: the first connection dies before a single byte, so the
    // upload cannot have reached the server — and the client still refuses
    // to resubmit it on its own authority.
    let handles = Arc::new(Mutex::new(Vec::new()));
    let connector = chaos_connector(
        hub.memory_dialer(),
        |ordinal| {
            if ordinal == 0 {
                FaultPlan {
                    kill_after_bytes: Some(0),
                    ..FaultPlan::healthy(1)
                }
            } else {
                FaultPlan::healthy(1)
            }
        },
        handles,
    );
    let mut cautious =
        ResilientClient::new(connector, chaos_policy()).with_first_request_id(1_000_001);
    let err = cautious
        .call(&Request::Upload(fx.extra_upload.clone()))
        .unwrap_err();
    assert!(
        matches!(
            err,
            mkse::net::ClientError::RetryUnsafe { op: "Upload", .. }
        ),
        "got {err}"
    );
    let stats = cautious.stats();
    assert_conservation(&stats, "cautious");
    assert_eq!(stats.retries, 0, "never silently resubmitted");
    assert_eq!(stats.unsafe_aborts, 1);
    assert_eq!(
        documents_on_server(&hub),
        seed_docs,
        "upload never executed"
    );

    // With the explicit opt-in: the first connection tears the upload frame
    // apart mid-flight (a strict prefix — the server cannot decode it), the
    // retry delivers it whole, and the server executes it exactly once.
    let handles = Arc::new(Mutex::new(Vec::new()));
    let connector = chaos_connector(
        hub.memory_dialer(),
        |ordinal| {
            if ordinal == 0 {
                FaultPlan {
                    kill_after_bytes: Some(40),
                    ..FaultPlan::healthy(2)
                }
            } else {
                FaultPlan::healthy(2)
            }
        },
        handles,
    );
    let policy = RetryPolicy {
        retry_non_idempotent: true,
        ..chaos_policy()
    };
    let mut opted = ResilientClient::new(connector, policy).with_first_request_id(2_000_001);
    let reply = opted
        .call(&Request::Upload(fx.extra_upload.clone()))
        .expect("at-least-once upload");
    assert!(matches!(reply, Response::Uploaded { .. }), "got {reply:?}");
    assert_eq!(opted.stats().retries, 1);
    assert_eq!(
        documents_on_server(&hub),
        seed_docs + 1,
        "exactly one execution"
    );

    // A true duplicate resubmission is visible: the server rejects it with a
    // typed store error and the document count does not move.
    let dup = opted
        .call(&Request::Upload(fx.extra_upload.clone()))
        .expect("duplicate upload completes (with an error reply)");
    assert!(
        matches!(dup, Response::Error(ProtocolError::Store(_))),
        "duplicate must be rejected visibly, got {dup:?}"
    );
    assert_eq!(documents_on_server(&hub), seed_docs + 1);

    // The journal shows exactly what executed: the torn first attempt never
    // appears; the successful upload and the rejected duplicate both do.
    let report = hub.shutdown();
    let uploads = report
        .journal
        .iter()
        .filter(|e| matches!(e.request, Request::Upload(_)))
        .count();
    assert_eq!(uploads, 2, "one successful upload + one visible duplicate");
}

/// Overload shedding under a genuine stampede: a hub budget of two with six
/// synchronized clients. Excess queries are answered immediately with
/// `Overloaded` (never stalling the readers), resilient clients honor the
/// retry-after hint, and everyone completes with byte-identical replies —
/// sheds are never journaled, so the replay oracle is untouched.
#[test]
fn shed_storm_resolves_through_retries_with_identical_replies() {
    const CLIENTS: usize = 6;
    let fx = Arc::new(fixture());
    let config = HubConfig {
        max_hub_in_flight: 2,
        shed_retry_after: Duration::from_millis(1),
        // A wide window parks admitted queries in the batcher, holding their
        // budget slots long enough that the synchronized stampede must shed.
        batch_window: Duration::from_millis(50),
        batch_depth: 2,
        journal: true,
        ..HubConfig::default()
    };
    let hub = Hub::spawn(seeded_server(&fx, false), config);
    let start = Arc::new(Barrier::new(CLIENTS));

    let mut workers = Vec::new();
    for k in 0..CLIENTS {
        let dialer = hub.memory_dialer();
        let fx = fx.clone();
        let start = start.clone();
        workers.push(std::thread::spawn(move || {
            let policy = RetryPolicy {
                max_attempts: 200,
                base_backoff: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(20),
                attempt_timeout: Duration::from_secs(5),
                request_deadline: Duration::from_secs(60),
                retry_non_idempotent: false,
                // Distinct seeds de-synchronize the stampede's retries.
                jitter_per_mille: 500,
                jitter_seed: 0x57A3 + k as u64,
            };
            let mut client = ResilientClient::new(clean_connector(dialer), policy)
                .with_first_request_id(k as u64 * 1_000_000 + 1);
            start.wait();
            let mut received = Vec::new();
            for q in fx.queries.iter() {
                let (id, reply) = client
                    .call_traced(&Request::Query(q.clone()))
                    .expect("every query completes despite shedding");
                assert!(
                    matches!(reply, Response::Search(_)),
                    "the final reply is a real answer, not a shed: {reply:?}"
                );
                received.push((id, reply));
            }
            (received, client.stats())
        }));
    }

    let mut all_received = Vec::new();
    let mut client_sheds = 0u64;
    for (k, worker) in workers.into_iter().enumerate() {
        let (received, stats) = worker.join().expect("client thread");
        assert_conservation(&stats, &format!("client {k}"));
        assert_eq!(stats.link_faults, 0, "clean links in this scenario");
        client_sheds += stats.sheds;
        all_received.extend(received);
    }

    let report = hub.shutdown();
    assert!(
        report.sheds > 0,
        "six synchronized clients against a budget of two must shed"
    );
    assert_eq!(
        client_sheds, report.sheds,
        "every shed the hub sent was observed (and retried) by a client"
    );
    assert_eq!(report.requests as usize, CLIENTS * fx.queries.len());
    assert_eq!(report.journal.len() as u64, report.requests);
    let expected = replay_journal(&fx, false, &report.journal);
    assert_replies_match_replay(&all_received, &expected, "shed storm");
}
