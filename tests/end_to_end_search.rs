//! Integration: the full pipeline from raw text through indexing, querying, ranked search and
//! document retrieval, spanning `mkse-textproc`, `mkse-core`, `mkse-crypto` and
//! `mkse-protocol` through the public facade.

use mkse::core::{CloudIndex, DocumentIndexer, QueryBuilder, SchemeKeys, SystemParams};
use mkse::protocol::{OwnerConfig, SearchSession};
use mkse::textproc::corpus::{CorpusSpec, FrequencyModel, SyntheticCorpus};
use mkse::textproc::{normalize_keyword, Document};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn text_corpus() -> Vec<Document> {
    [
        "Encrypted cloud storage with privacy preserving ranked keyword search",
        "Recipe collection: pasta, pizza and seasonal vegetables",
        "Ranked retrieval of encrypted medical records in the cloud",
        "Travel itinerary for the summer holidays in the mountains",
        "Privacy impact assessment for cloud hosted medical data",
        "Annual financial report with revenue and expense tables",
    ]
    .iter()
    .enumerate()
    .map(|(i, t)| Document::from_text(i as u64, t))
    .collect()
}

#[test]
fn scheme_layer_end_to_end_over_real_text() {
    let params = SystemParams::default();
    let mut rng = StdRng::seed_from_u64(1);
    let keys = SchemeKeys::generate(&params, &mut rng);
    let indexer = DocumentIndexer::new(&params, &keys);
    let corpus = text_corpus();

    let mut cloud = CloudIndex::new(params.clone());
    cloud
        .insert_all(corpus.iter().map(|d| indexer.index_document(d)))
        .expect("upload");

    // Query "encrypted cloud": documents 0, 2 and 4 contain the stem "cloud"; 0 and 2 contain
    // "encrypt" as well.
    let keywords: Vec<String> = ["encrypted", "cloud"]
        .iter()
        .map(|w| normalize_keyword(w))
        .collect();
    let refs: Vec<&str> = keywords.iter().map(|s| s.as_str()).collect();
    let trapdoors = keys.trapdoors_for(&params, &refs);
    let pool = keys.random_pool_trapdoors(&params);
    let query = QueryBuilder::new(&params)
        .add_trapdoors(&trapdoors)
        .with_randomization(&pool)
        .build(&mut rng);

    let hits = cloud.search_unranked(&query);
    // Completeness: no false negatives, ever.
    assert!(hits.contains(&0));
    assert!(hits.contains(&2));
    // Soundness at these parameters and seed: the recipe/travel/financial documents stay out.
    assert!(!hits.contains(&1));
    assert!(!hits.contains(&3));
    assert!(!hits.contains(&5));
}

#[test]
fn completeness_holds_over_a_synthetic_corpus() {
    // The scheme never misses a true match, regardless of corpus shape: every document that
    // contains all query keywords is returned (Eq. 3 zeros are a superset).
    let params = SystemParams::default();
    let mut rng = StdRng::seed_from_u64(5);
    let keys = SchemeKeys::generate(&params, &mut rng);
    let indexer = DocumentIndexer::new(&params, &keys);
    let corpus = SyntheticCorpus::generate(
        &CorpusSpec {
            num_documents: 120,
            vocabulary_size: 800,
            keywords_per_document: 25,
            frequency_model: FrequencyModel::Uniform { lo: 1, hi: 15 },
        },
        &mut rng,
    );
    let mut cloud = CloudIndex::new(params.clone());
    cloud
        .insert_all(indexer.index_documents(&corpus.documents))
        .expect("upload");
    let pool = keys.random_pool_trapdoors(&params);

    for probe in 0..10usize {
        let source = &corpus.documents[probe * 11];
        let kws: Vec<&str> = source.keywords().into_iter().take(3).collect();
        let truth = corpus.documents_containing_all(&kws);
        let trapdoors = keys.trapdoors_for(&params, &kws);
        let query = QueryBuilder::new(&params)
            .add_trapdoors(&trapdoors)
            .with_randomization(&pool)
            .build(&mut rng);
        let hits = cloud.search_unranked(&query);
        for id in &truth {
            assert!(
                hits.contains(id),
                "missing true match {id} for probe {probe}"
            );
        }
    }
}

#[test]
fn ranked_results_follow_term_frequency() {
    let params = SystemParams::with_five_levels();
    let mut rng = StdRng::seed_from_u64(9);
    let keys = SchemeKeys::generate(&params, &mut rng);
    let indexer = DocumentIndexer::new(&params, &keys);
    let mut cloud = CloudIndex::new(params.clone());

    // Five documents mentioning "protocol" with increasing frequency.
    for (id, tf) in [(0u64, 1u32), (1, 3), (2, 5), (3, 9), (4, 14)] {
        let text = (0..tf).map(|_| "protocol").collect::<Vec<_>>().join(" ");
        cloud
            .insert(indexer.index_document(&Document::from_text(id, &text)))
            .expect("upload");
    }
    let trapdoors = keys.trapdoors_for(&params, &["protocol"]);
    let query = QueryBuilder::new(&params)
        .add_trapdoors(&trapdoors)
        .build(&mut rng);
    let hits = cloud.search(&query);
    assert_eq!(hits.len(), 5);
    // Ranks are non-increasing and the most frequent document comes first.
    assert_eq!(hits[0].document_id, 4);
    for pair in hits.windows(2) {
        assert!(pair[0].rank >= pair[1].rank);
    }
    // The most frequent mention reaches the top level, the single mention stays at level 1.
    assert_eq!(hits[0].rank, params.rank_levels() as u32);
    assert_eq!(hits.last().unwrap().rank, 1);
}

#[test]
fn protocol_layer_end_to_end_retrieval_round_trip() {
    let mut rng = StdRng::seed_from_u64(31);
    let config = OwnerConfig {
        rsa_modulus_bits: 256, // keep the integration test fast in debug builds
        ..OwnerConfig::default()
    };
    let mut session = SearchSession::setup(config, &text_corpus(), &mut rng).expect("setup");

    let keywords: Vec<String> = ["medical", "cloud"]
        .iter()
        .map(|w| normalize_keyword(w))
        .collect();
    let refs: Vec<&str> = keywords.iter().map(|s| s.as_str()).collect();
    let report = session
        .run_query(&refs, 2, &mut rng)
        .expect("round completes");

    // Documents 2 and 4 both contain "medical" and "cloud".
    let matched: Vec<u64> = report.matches.iter().map(|(id, _)| *id).collect();
    assert!(matched.contains(&2));
    assert!(matched.contains(&4));
    assert_eq!(report.retrieved.len(), 2);
    for (id, plaintext) in &report.retrieved {
        let original = text_corpus()
            .iter()
            .find(|d| d.id == *id)
            .unwrap()
            .body
            .clone();
        assert_eq!(
            plaintext, &original,
            "decrypted body mismatch for document {id}"
        );
    }
}

#[test]
fn multiple_users_share_the_same_encrypted_index() {
    use mkse::protocol::{Client, CloudServer, DataOwner, QueryMessage, User};

    let mut rng = StdRng::seed_from_u64(77);
    let config = OwnerConfig {
        rsa_modulus_bits: 256,
        ..OwnerConfig::default()
    };
    let mut owner = DataOwner::new(config, &mut rng);
    let (indices, encrypted) = owner.prepare_documents(&text_corpus(), &mut rng);
    // Queries go through the envelope client — the front door every caller uses.
    let mut server = Client::new(CloudServer::new(owner.params().clone()));
    server.upload(indices, encrypted).expect("upload");

    let mut users: Vec<User> = (1..=2)
        .map(|id| {
            User::new(
                id,
                owner.params().clone(),
                owner.public_key().clone(),
                256,
                &mut rng,
            )
        })
        .collect();
    for user in &users {
        owner.register_user(user.id(), user.public_key().clone());
    }

    let keyword = normalize_keyword("privacy");
    let mut results = Vec::new();
    for user in users.iter_mut() {
        user.set_random_pool(owner.random_pool_trapdoors());
        if let Some(req) = user.make_trapdoor_request(&[keyword.as_str()]) {
            let reply = owner.handle_trapdoor_request(&req).unwrap();
            user.ingest_trapdoor_reply(&reply).unwrap();
        }
        let query = user
            .build_query(&[keyword.as_str()], None, &mut rng)
            .unwrap();
        let reply = server
            .query(&QueryMessage {
                query: query.query,
                top: None,
            })
            .expect("framed query round trip");
        let mut ids: Vec<u64> = reply.matches.iter().map(|m| m.document_id).collect();
        ids.sort_unstable();
        results.push(ids);
    }
    // Both authorized users see exactly the same matches despite their queries being
    // differently randomized.
    assert_eq!(results[0], results[1]);
    assert!(results[0].contains(&0));
}
