//! Integration: property-based invariants of the scheme exercised through the public facade
//! (completeness, randomization-neutrality, trapdoor consistency between owner and user).

use mkse::core::{
    get_bin, trapdoor_from_bin_key, CloudIndex, DocumentIndexer, QueryBuilder, SchemeKeys,
    SystemParams,
};
use mkse::textproc::document::TermFrequencies;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_params() -> SystemParams {
    // Smaller index keeps the property tests fast while preserving every structural property.
    SystemParams::new(128, 4, 16, 10, 5, vec![1, 4, 8]).expect("valid parameters")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every document containing all query keywords matches, no matter how keywords are drawn.
    #[test]
    fn no_false_negatives(
        seed in 0u64..u64::MAX,
        doc_keywords in proptest::collection::vec(0u32..40, 1..12),
        query_pick in proptest::collection::vec(any::<proptest::sample::Index>(), 1..4),
    ) {
        let params = small_params();
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = SchemeKeys::generate(&params, &mut rng);
        let indexer = DocumentIndexer::new(&params, &keys);

        let kw_strings: Vec<String> = doc_keywords.iter().map(|k| format!("kw{k}")).collect();
        let kw_refs: Vec<&str> = kw_strings.iter().map(|s| s.as_str()).collect();
        let mut cloud = CloudIndex::new(params.clone());
        cloud.insert(indexer.index_keywords(0, &kw_refs)).expect("upload");

        // Query keywords are a subset of the document's keywords.
        let query_kws: Vec<&str> = query_pick.iter().map(|ix| *ix.get(&kw_refs)).collect();
        let trapdoors = keys.trapdoors_for(&params, &query_kws);
        let pool = keys.random_pool_trapdoors(&params);
        let query = QueryBuilder::new(&params)
            .add_trapdoors(&trapdoors)
            .with_randomization(&pool)
            .build(&mut rng);
        prop_assert!(cloud.search_unranked(&query).contains(&0));
    }

    /// Randomizing a query never changes the result set.
    #[test]
    fn randomization_is_result_neutral(seed in 0u64..u64::MAX) {
        let params = small_params();
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = SchemeKeys::generate(&params, &mut rng);
        let indexer = DocumentIndexer::new(&params, &keys);
        let mut cloud = CloudIndex::new(params.clone());
        for id in 0..12u64 {
            let kws: Vec<String> = (0..4).map(|k| format!("kw{}", (id + k) % 9)).collect();
            let refs: Vec<&str> = kws.iter().map(|s| s.as_str()).collect();
            cloud.insert(indexer.index_keywords(id, &refs)).expect("upload");
        }
        let trapdoors = keys.trapdoors_for(&params, &["kw3", "kw4"]);
        let pool = keys.random_pool_trapdoors(&params);
        let plain = QueryBuilder::new(&params).add_trapdoors(&trapdoors).build(&mut rng);
        let randomized = QueryBuilder::new(&params)
            .add_trapdoors(&trapdoors)
            .with_randomization(&pool)
            .build(&mut rng);
        prop_assert_eq!(cloud.search_unranked(&plain), cloud.search_unranked(&randomized));
    }

    /// The trapdoor a user derives from a received bin key always equals the one the data
    /// owner embeds in document indices.
    #[test]
    fn user_and_owner_trapdoors_agree(seed in 0u64..u64::MAX, kw_id in 0u32..10_000) {
        let params = small_params();
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = SchemeKeys::generate(&params, &mut rng);
        let keyword = format!("kw{kw_id}");
        let bin = get_bin(&params, &keyword);
        let user_side = trapdoor_from_bin_key(&params, keys.bin_key(bin), &keyword);
        prop_assert_eq!(user_side, keys.trapdoor_for(&params, &keyword));
    }

    /// Higher ranking levels never match a query that a lower level already rejected, so
    /// Algorithm 1's early exit is sound.
    #[test]
    fn rank_levels_are_monotone(seed in 0u64..u64::MAX, tf in 1u32..20) {
        let params = small_params();
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = SchemeKeys::generate(&params, &mut rng);
        let indexer = DocumentIndexer::new(&params, &keys);
        let terms = TermFrequencies::from_pairs([("topic".to_string(), tf), ("filler".to_string(), 1)]);
        let index = indexer.index_terms(0, &terms);
        let trapdoors = keys.trapdoors_for(&params, &["topic"]);
        let query = QueryBuilder::new(&params).add_trapdoors(&trapdoors).build(&mut rng);

        let mut previous_matched = true;
        for level in &index.levels {
            let matched = level.matches_query(query.bits());
            if !previous_matched {
                prop_assert!(!matched, "a higher level matched after a lower level failed");
            }
            previous_matched = matched;
        }
    }
}
