//! Quickstart: index a handful of documents, run a ranked multi-keyword query, print the hits.
//!
//! This uses only the scheme layer (`mkse::core`); see `cloud_document_search.rs` for the full
//! three-party protocol with encryption and blinded key retrieval.
//!
//! Run with: `cargo run --example quickstart`

use mkse::core::{
    CloudIndex, DocumentIndexer, IndexStore, QueryBuilder, SchemeKeys, SearchEngine, SystemParams,
};
use mkse::protocol::{Client, CloudServer, QueryMessage};
use mkse::textproc::{extract_keywords, normalize_keyword};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let params = SystemParams::default(); // r = 448, d = 6, U = 60, V = 30, η = 3
    let mut rng = StdRng::seed_from_u64(1);

    // --- Data owner: generate secret keys and index the corpus -------------------------------
    let keys = SchemeKeys::generate(&params, &mut rng);
    let indexer = DocumentIndexer::new(&params, &keys);

    let corpus = [
        (
            0u64,
            "Privacy preserving ranked keyword search over encrypted cloud data",
        ),
        (
            1u64,
            "Weather forecast: heavy rain and strong winds expected tomorrow",
        ),
        (
            2u64,
            "Cloud storage pricing comparison for enterprise customers",
        ),
        (
            3u64,
            "Encrypted backups and searchable encryption for cloud archives",
        ),
    ];

    let mut cloud = CloudIndex::new(params.clone());
    for (id, text) in &corpus {
        let terms = extract_keywords(text);
        cloud
            .insert(indexer.index_terms(*id, &terms))
            .expect("parameters match");
        println!(
            "indexed document {id}: {} distinct keywords",
            terms.distinct_terms()
        );
    }

    // --- User: obtain trapdoors and query for "encrypted cloud" ------------------------------
    let query_words = ["encrypted", "cloud"];
    let normalized: Vec<String> = query_words.iter().map(|w| normalize_keyword(w)).collect();
    let keyword_refs: Vec<&str> = normalized.iter().map(|s| s.as_str()).collect();
    let trapdoors = keys.trapdoors_for(&params, &keyword_refs);
    let pool = keys.random_pool_trapdoors(&params);
    let query = QueryBuilder::new(&params)
        .add_trapdoors(&trapdoors)
        .with_randomization(&pool)
        .build(&mut rng);

    // --- Server: oblivious ranked search ------------------------------------------------------
    let hits = cloud.search(&query);
    println!(
        "\nquery {:?} (normalized {:?}) matched {} document(s):",
        query_words,
        normalized,
        hits.len()
    );
    for hit in &hits {
        let text = corpus
            .iter()
            .find(|(id, _)| *id == hit.document_id)
            .unwrap()
            .1;
        println!(
            "  doc {:>2}  rank {}  \"{}\"",
            hit.document_id, hit.rank, text
        );
    }

    // --- Same search, production read path: shard-parallel engine ----------------------------
    // The engine partitions the store across shards and scans them on separate
    // threads; results are guaranteed identical to the sequential scan above.
    let mut engine = SearchEngine::sharded(params.clone(), 2);
    for (id, text) in &corpus {
        engine
            .insert(indexer.index_terms(*id, &extract_keywords(text)))
            .expect("parameters match");
    }
    assert_eq!(engine.search(&query), hits);
    println!(
        "\nsharded engine ({} shards) returned identical hits",
        engine.store().num_shards()
    );

    // --- Same search through the service front door: the envelope Client ---------------------
    // A deployment talks to the server exclusively in framed Request/Response
    // envelopes; the Client is that front door (upload and query alike), and it
    // measures the real framed wire bytes every exchange costs.
    let mut server = Client::new(CloudServer::with_shards(params.clone(), 2));
    server
        .upload(
            corpus
                .iter()
                .map(|(id, text)| indexer.index_terms(*id, &extract_keywords(text)))
                .collect(),
            vec![], // index-only upload: this quickstart never retrieves documents
        )
        .expect("framed upload");
    let reply = server
        .query(&QueryMessage {
            query: query.bits().clone(),
            top: None,
        })
        .expect("framed query round trip");
    let client_hits: Vec<(u64, u32)> = reply
        .matches
        .iter()
        .map(|m| (m.document_id, m.rank))
        .collect();
    assert_eq!(
        client_hits,
        hits.iter()
            .map(|h| (h.document_id, h.rank))
            .collect::<Vec<_>>()
    );
    let wire = server.wire_stats();
    println!(
        "envelope client returned identical hits over the framed wire \
         ({} frames / {} bytes sent, {} frames / {} bytes received)",
        wire.frames_sent, wire.bytes_sent, wire.frames_received, wire.bytes_received
    );
}
