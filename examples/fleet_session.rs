//! The shard fleet end to end: three shard-server nodes register with a
//! coordinator over the framed codec, a corpus uploads through the
//! coordinator (fanning out per node), and a seeded byte budget kills one
//! node's data link **mid-workload** — the coordinator fails it over by
//! re-shipping its shards from the mirror snapshot, and every completed reply
//! is still byte-identical to a sequential single-server twin replaying the
//! coordinator hub's journal.
//!
//! The report at the bottom prints the failover accounting and renders the
//! fleet telemetry (`nodes_registered`/`nodes_live` gauges, `failovers`,
//! `heartbeats_missed`, `shards_reassigned` counters) in both Prometheus text
//! and JSON.
//!
//! Run with: `cargo run --release --example fleet_session`

use mkse::core::{DocumentIndexer, QueryBuilder, RankedDocumentIndex, SchemeKeys, SystemParams};
use mkse::net::{
    Connector, Coordinator, FaultPlan, FaultyLink, FleetConfig, Hub, HubConfig, JournalEntry,
    MemoryDialer, NodeConfig, NodeRunner, ResilientClient, RetryPolicy,
};
use mkse::protocol::{
    render_json, render_prometheus, wire, CloudServer, NodeCapabilities, QueryMessage, Request,
    Response, Service, UploadMessage,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const GLOBAL_SHARDS: usize = 4;
const ROUNDS: usize = 3;

fn clean_connector(dialer: MemoryDialer) -> Connector {
    Box::new(move |_ordinal| {
        let (reader, writer) = dialer.connect().split();
        Ok((Box::new(reader) as _, Box::new(writer) as _))
    })
}

/// Ordinal 0 dies after `budget` written bytes; every reconnect is dead on
/// arrival — the machine is gone, not flaky.
fn doomed_connector(dialer: MemoryDialer, budget: u64) -> Connector {
    Box::new(move |ordinal| {
        let (reader, writer) = dialer.connect().split();
        let plan = FaultPlan {
            kill_after_bytes: Some(if ordinal == 0 { budget } else { 0 }),
            ..FaultPlan::healthy(0xF1EE7 + ordinal)
        };
        let (r, w, _) = FaultyLink::wrap(Box::new(reader), Box::new(writer), plan);
        Ok((Box::new(r) as _, Box::new(w) as _))
    })
}

fn late_connector(slot: Arc<Mutex<Option<MemoryDialer>>>) -> Connector {
    Box::new(move |_ordinal| {
        let guard = slot.lock().unwrap();
        let dialer = guard
            .as_ref()
            .ok_or_else(|| std::io::Error::other("coordinator hub not up yet"))?;
        let (reader, writer) = dialer.connect().split();
        Ok((Box::new(reader) as _, Box::new(writer) as _))
    })
}

/// Round-robin placement assigns upload position `i` to shard
/// `i % GLOBAL_SHARDS`; the coordinator's per-node forward carries exactly
/// the slices below, which makes the kill budget computable to the byte.
fn forward_len(indices: &[RankedDocumentIndex], shards: &[usize]) -> u64 {
    let slice: Vec<RankedDocumentIndex> = indices
        .iter()
        .enumerate()
        .filter(|(i, _)| shards.contains(&(i % GLOBAL_SHARDS)))
        .map(|(_, idx)| idx.clone())
        .collect();
    wire::encode_request(
        1,
        &Request::Upload(UploadMessage {
            indices: slice,
            documents: vec![],
        }),
    )
    .len() as u64
}

/// Replay the coordinator hub's journal on a sequential twin; fleet-control
/// traffic (registration, heartbeats, metrics) has no twin counterpart.
fn replay_journal(params: &SystemParams, journal: &[JournalEntry]) -> BTreeMap<u64, Response> {
    let mut twin = CloudServer::with_shards(params.clone(), GLOBAL_SHARDS);
    let mut expected = BTreeMap::new();
    for entry in journal {
        if matches!(
            entry.request,
            Request::RegisterNode(_) | Request::NodeHeartbeat(_) | Request::MetricsSnapshot
        ) {
            continue;
        }
        expected.insert(entry.request_id, twin.call(entry.request.clone()));
    }
    expected
}

fn main() {
    let params = SystemParams::default();
    let mut rng = StdRng::seed_from_u64(11);
    let keys = SchemeKeys::generate(&params, &mut rng);
    let indexer = DocumentIndexer::new(&params, &keys);
    let pool = keys.random_pool_trapdoors(&params);
    let topics = [
        "alert",
        "invoice",
        "intrusion",
        "revenue",
        "backup",
        "audit",
        "phishing",
        "forecast",
    ];
    let indices: Vec<RankedDocumentIndex> = (0..32u64)
        .map(|id| {
            let topic = topics[id as usize % topics.len()];
            indexer.index_keywords(id, &[topic, "common", "filler"])
        })
        .collect();
    let queries: Vec<QueryMessage> = topics
        .iter()
        .map(|topic| {
            let query = QueryBuilder::new(&params)
                .add_trapdoors(&keys.trapdoors_for(&params, &[topic]))
                .with_randomization(&pool)
                .build(&mut rng);
            QueryMessage {
                query: query.bits().clone(),
                top: None,
            }
        })
        .collect();

    // ── Spawn the fleet: three nodes, one with a doomed data link ──────────
    let slot: Arc<Mutex<Option<MemoryDialer>>> = Arc::new(Mutex::new(None));
    let mut runners: Vec<NodeRunner> = [(1u64, 2u32), (2, 1), (3, 0)]
        .into_iter()
        .map(|(node_id, shard_slots)| {
            NodeRunner::spawn(
                params.clone(),
                NodeConfig {
                    node_id,
                    local_shards: 2,
                    capabilities: NodeCapabilities {
                        shard_slots,
                        scan_lanes: 2,
                        cache_capacity: 0,
                    },
                    ..NodeConfig::default()
                },
                late_connector(slot.clone()),
            )
        })
        .collect();

    let mut coordinator = Coordinator::new(
        params.clone(),
        FleetConfig {
            num_global_shards: GLOBAL_SHARDS,
            heartbeat_interval: Duration::from_millis(50),
            failure_deadline: Duration::from_secs(120),
            node_policy: RetryPolicy {
                max_attempts: 3,
                retry_non_idempotent: false,
                jitter_per_mille: 250,
                jitter_seed: 0xF1EE7,
                ..RetryPolicy::default()
            },
        },
    );
    // Node 1 serves shards {0,1}: its link survives the seed-upload forward
    // plus five query frames, then the machine is lost mid-workload.
    let q = wire::encode_request(1, &Request::Query(queries[0].clone())).len() as u64;
    let budget = forward_len(&indices, &[0, 1]) + 5 * q + q / 2;
    for runner in &runners {
        let connector = if runner.node_id() == 1 {
            doomed_connector(runner.dialer(), budget)
        } else {
            clean_connector(runner.dialer())
        };
        coordinator.add_node(runner.node_id(), connector);
    }
    let telemetry = coordinator.telemetry_handle();
    let hub = Hub::spawn(
        coordinator,
        HubConfig {
            journal: true,
            ..HubConfig::default()
        },
    );
    *slot.lock().unwrap() = Some(hub.memory_dialer());

    println!("=== registration ===");
    for runner in runners.iter_mut() {
        let assignment = runner.register().expect("registration");
        println!(
            "node {} registered: shards {:?}, deadline {} ms",
            runner.node_id(),
            assignment.shards,
            assignment.failure_deadline_ms
        );
    }

    // ── The workload: upload through the coordinator, query until the kill ─
    let mut client = ResilientClient::new(
        clean_connector(hub.memory_dialer()),
        RetryPolicy {
            max_attempts: 24,
            retry_non_idempotent: false,
            jitter_per_mille: 250,
            jitter_seed: 11,
            ..RetryPolicy::default()
        },
    )
    .with_first_request_id(1);
    let mut received = Vec::new();
    let (id, reply) = client
        .call_traced(&Request::Upload(UploadMessage {
            indices: indices.clone(),
            documents: vec![],
        }))
        .expect("seed upload");
    assert!(matches!(reply, Response::Uploaded { .. }));
    received.push((id, reply));

    let mut matches = 0usize;
    for round in 0..ROUNDS {
        for query in &queries {
            let (id, reply) = client
                .call_traced(&Request::Query(query.clone()))
                .expect("queries are idempotent and survive failover");
            if let Response::Search(r) = &reply {
                matches += r.matches.len();
            }
            received.push((id, reply));
        }
        // Survivors keep beating between rounds; the dead node is refused.
        for runner in runners.iter_mut() {
            match runner.heartbeat() {
                Ok(a) => println!(
                    "round {round}: node {} beats, shards {:?}",
                    runner.node_id(),
                    a.shards
                ),
                Err(e) => println!("round {round}: node {} refused: {e}", runner.node_id()),
            }
        }
    }
    let (id, info) = client.call_traced(&Request::ServerInfo).expect("info");
    if let Response::Info(i) = &info {
        assert_eq!(i.documents, indices.len() as u64, "corpus pinned");
        println!(
            "\ncorpus pinned after failover: {} documents across {} global shards",
            i.documents, i.shards
        );
    }
    received.push((id, info));
    let stats = client.stats();
    assert_eq!(
        stats.attempts,
        stats.successes + stats.sheds + stats.link_faults,
        "conservation law"
    );
    assert!(matches > 0, "the workload must find documents");

    // ── The oracle: twin replay of the coordinator hub's journal ───────────
    let report = hub.shutdown();
    let expected = replay_journal(&params, &report.journal);
    for (id, reply) in &received {
        let want = &expected[id];
        assert_eq!(reply, want, "reply #{id} diverged from the twin");
        assert_eq!(
            wire::encode_response(*id, reply),
            wire::encode_response(*id, want),
            "frame bytes #{id} diverged from the twin"
        );
    }
    for runner in runners {
        runner.shutdown();
    }

    // ── The fleet telemetry report ─────────────────────────────────────────
    let snapshot = telemetry.snapshot();
    assert_eq!(snapshot.counter("failovers"), 1, "one node lost");
    assert_eq!(snapshot.counter("shards_reassigned"), 2);
    println!("\n=== fleet registry (Prometheus) ===");
    let prom = render_prometheus(&snapshot);
    for line in prom.lines().filter(|l| {
        l.contains("nodes_") || l.contains("failover") || l.contains("shards_reassigned")
    }) {
        println!("{line}");
    }
    println!("\n=== fleet registry (JSON) ===");
    println!("{}", render_json(&snapshot));
    for series in [
        "nodes_registered",
        "nodes_live",
        "failovers",
        "heartbeats_missed",
        "shards_reassigned",
    ] {
        assert!(
            prom.contains(series),
            "Prometheus render must carry {series}"
        );
    }

    println!(
        "\nfleet: {} replies completed and twin-verified, {} matches, \
         1 node killed mid-workload, {} shards re-homed — all replies intact",
        received.len(),
        matches,
        snapshot.counter("shards_reassigned"),
    );
}
