//! The full three-party protocol of Figure 1 on a realistic scenario: a company outsources a
//! set of internal reports to an untrusted cloud, and an analyst later searches and retrieves
//! only the most relevant ones.
//!
//! Steps exercised: offline indexing + per-document encryption (data owner), trapdoor exchange,
//! randomized query, ranked oblivious search (cloud server), retrieval of the top-θ documents,
//! blinded decryption of the per-document keys, and a full Table-1/Table-2 style cost report.
//!
//! Run with: `cargo run --release --example cloud_document_search`

use mkse::protocol::{OwnerConfig, SearchSession};
use mkse::textproc::{normalize_keyword, Document};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn corpus() -> Vec<Document> {
    let reports = [
        "Quarterly security audit: encrypted storage, key rotation and access control review",
        "Marketing plan for the new product launch in the European market",
        "Incident report: phishing attack against the finance department, credentials rotated",
        "Security architecture: searchable encryption for the outsourced document archive",
        "Meeting notes: cafeteria menu changes and office plant maintenance",
        "Data protection impact assessment for the encrypted cloud archive migration",
        "Financial results for the third quarter, revenue and cost breakdown",
        "Audit of access control policies and encryption key management procedures",
    ];
    reports
        .iter()
        .enumerate()
        .map(|(i, text)| Document::from_text(i as u64, text))
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // 512-bit RSA keeps the example snappy in debug builds; pass-through of the protocol is
    // identical to the paper's 1024-bit setting (used by the experiment binaries).
    let config = OwnerConfig {
        rsa_modulus_bits: 512,
        ..OwnerConfig::default()
    };

    println!(
        "== offline phase: data owner indexes and encrypts {} reports ==",
        corpus().len()
    );
    let mut session = SearchSession::setup(config, &corpus(), &mut rng).expect("setup");
    println!(
        "uploaded {} encrypted documents to the cloud server\n",
        session.server.num_documents()
    );

    // The analyst searches for reports about encryption audits.
    let raw_query = ["encryption", "audit"];
    let normalized: Vec<String> = raw_query.iter().map(|w| normalize_keyword(w)).collect();
    let keyword_refs: Vec<&str> = normalized.iter().map(|s| s.as_str()).collect();
    println!("== online phase: analyst queries for {raw_query:?} and retrieves the top 2 ==");
    let report = session
        .run_query(&keyword_refs, 2, &mut rng)
        .expect("protocol round completes");

    println!("\nmatches (document id, rank):");
    for (id, rank) in &report.matches {
        println!("  doc {id} at rank {rank}");
    }
    println!("\nretrieved and decrypted documents:");
    for (id, plaintext) in &report.retrieved {
        println!("  doc {id}: {}", String::from_utf8_lossy(plaintext));
    }

    println!("\n== cost report for this round (Table 1 / Table 2 measurements) ==");
    println!("{}", report.render());

    // A second query for the same terms reuses the cached trapdoors: no user↔owner traffic in
    // the trapdoor phase at all.
    let second = session
        .run_query(&keyword_refs, 1, &mut rng)
        .expect("second round completes");
    println!(
        "second identical query: trapdoor-phase traffic = {} bits (first round paid the trapdoor exchange once)",
        second
            .communication
            .bits_sent(mkse::protocol::Party::User, mkse::protocol::Phase::Trapdoor)
    );

    // Several searches can travel in a single round trip: the server answers the
    // whole batch in one pass over each index shard, with per-query results
    // identical to individually sent queries.
    let phishing = normalize_keyword("phishing");
    let financial = normalize_keyword("financial");
    let batch_sets: Vec<Vec<&str>> = vec![vec![phishing.as_str()], vec![financial.as_str()]];
    let batched = session
        .run_batch(&batch_sets, &mut rng)
        .expect("batched round completes");
    println!(
        "\n== batched round: {} queries, one round trip, server scanned {} shards in parallel ==",
        batch_sets.len(),
        session.server.num_shards()
    );
    for (kws, matches) in batch_sets.iter().zip(batched.iter()) {
        println!("  {kws:?} -> {} match(es): {matches:?}", matches.len());
    }
}
