//! The resilience layer end to end: resilient clients over **deterministic,
//! seeded faulty links** (connections that die after a byte budget, tear
//! writes, inject delays) complete a full query workload against one hub —
//! retrying and reconnecting transparently — and a second, budget-starved hub
//! demonstrates overload shedding with a typed `Overloaded` reply the client
//! honors as backoff.
//!
//! The report at the bottom prints the attempt-level accounting and renders
//! the new resilience telemetry (`retries`, `reconnects`, `sheds`,
//! `faults_injected` counters and the `backoff_wait` histogram) in both
//! Prometheus text and JSON, then asserts the conservation laws that make the
//! layer honest:
//!
//! - per client: `attempts == successes + sheds + link_faults`
//! - registry ↔ client: the shared telemetry registry agrees with the
//!   per-client stats (`retries`, `reconnects`, backoff samples)
//! - hub ↔ client: every shed the hub reports was observed by the client
//!
//! Run with: `cargo run --release --example resilient_session`

use mkse::core::{
    DocumentIndexer, QueryBuilder, SchemeKeys, SystemParams, Telemetry, TelemetryLevel,
};
use mkse::net::{
    Connector, FaultHandle, FaultPlan, FaultyLink, Hub, HubConfig, MemoryDialer, NetClient,
    ResilientClient, RetryPolicy,
};
use mkse::protocol::{
    render_json, render_prometheus, wire, CloudServer, QueryMessage, Request, Response,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const CLIENTS: usize = 3;
const ROUNDS: usize = 4;

fn seeded_server(params: &SystemParams, indexer: &DocumentIndexer) -> CloudServer {
    let topics = [
        "alert",
        "invoice",
        "intrusion",
        "revenue",
        "backup",
        "audit",
        "phishing",
        "forecast",
    ];
    let indices = (0..32u64)
        .map(|id| {
            let topic = topics[id as usize % topics.len()];
            indexer.index_keywords(id, &[topic, "common", "filler"])
        })
        .collect();
    let mut server = CloudServer::with_shards(params.clone(), 2);
    server.set_telemetry_level(TelemetryLevel::Counters);
    server.upload(indices, vec![]).expect("seed upload");
    server
}

/// A connector that wraps every fresh in-process connection in a seeded
/// [`FaultyLink`], mirroring injected faults into `registry`.
fn faulty_connector(
    dialer: MemoryDialer,
    base_seed: u64,
    kill_budget: u64,
    registry: Telemetry,
    handles: Arc<Mutex<Vec<FaultHandle>>>,
) -> Connector {
    Box::new(move |ordinal| {
        let (reader, writer) = dialer.connect().split();
        let plan = FaultPlan {
            kill_after_bytes: Some(kill_budget),
            torn_write_per_mille: 60,
            delay_per_mille: 100,
            max_delay_micros: 150,
            ..FaultPlan::healthy(base_seed.wrapping_add(ordinal))
        };
        let (r, w, h) = FaultyLink::wrap_with_telemetry(
            Box::new(reader),
            Box::new(writer),
            plan,
            Some(registry.clone()),
        );
        handles.lock().unwrap().push(h);
        Ok((Box::new(r), Box::new(w)))
    })
}

fn main() {
    let params = SystemParams::default();
    let mut rng = StdRng::seed_from_u64(11);
    let keys = SchemeKeys::generate(&params, &mut rng);
    let indexer = DocumentIndexer::new(&params, &keys);
    let pool = keys.random_pool_trapdoors(&params);
    let topics = [
        "alert",
        "invoice",
        "intrusion",
        "revenue",
        "backup",
        "audit",
        "phishing",
        "forecast",
    ];
    let queries: Vec<QueryMessage> = topics
        .iter()
        .map(|topic| {
            let query = QueryBuilder::new(&params)
                .add_trapdoors(&keys.trapdoors_for(&params, &[topic]))
                .with_randomization(&pool)
                .build(&mut rng);
            QueryMessage {
                query: query.bits().clone(),
                top: None,
            }
        })
        .collect();

    // The client-side resilience registry, shared by every resilient client
    // and every faulty link: retries, reconnects, injected faults, backoff.
    let resilience = Telemetry::new();
    resilience.set_level(TelemetryLevel::Spans);

    // ── Phase 1: chaos — every link dies after ~3 query frames ─────────────
    let hub = Hub::spawn(
        seeded_server(&params, &indexer),
        HubConfig {
            batch_window: Duration::from_millis(2),
            batch_depth: 8,
            ..HubConfig::default()
        },
    );
    let frame_len = wire::encode_request(1, &Request::Query(queries[0].clone())).len() as u64;
    let kill_budget = frame_len * 3 + frame_len / 2;

    let workers: Vec<_> = (0..CLIENTS)
        .map(|k| {
            let handles = Arc::new(Mutex::new(Vec::new()));
            let connector = faulty_connector(
                hub.memory_dialer(),
                0xFEED + k as u64 * 997,
                kill_budget,
                resilience.clone(),
                handles.clone(),
            );
            let queries = queries.clone();
            let registry = resilience.clone();
            std::thread::spawn(move || {
                let mut client = ResilientClient::new(connector, RetryPolicy::default())
                    .with_first_request_id(k as u64 * 1_000_000 + 1)
                    .with_telemetry(registry);
                let mut matches = 0usize;
                for round in 0..ROUNDS {
                    for i in 0..queries.len() {
                        let q = &queries[(k + round + i) % queries.len()];
                        match client
                            .call(&Request::Query(q.clone()))
                            .expect("idempotent query survives chaos")
                        {
                            Response::Search(reply) => matches += reply.matches.len(),
                            other => panic!("expected Search, got {}", other.name()),
                        }
                    }
                }
                let faults: u64 = handles.lock().unwrap().iter().map(|h| h.faults()).sum();
                (client.stats(), client.wire_stats(), matches, faults)
            })
        })
        .collect();

    println!("=== chaos phase (kill budget {kill_budget} bytes/connection) ===");
    let mut totals = mkse::net::ResilienceStats::default();
    let mut faults_total = 0u64;
    let mut matches_total = 0usize;
    for (k, worker) in workers.into_iter().enumerate() {
        let (stats, wire_stats, matches, faults) = worker.join().expect("client thread");
        println!(
            "client {k}: {} attempts = {} completed + {} shed + {} link faults | \
             {} retries, {} reconnects, {} backoff sleeps ({} µs), {} µs blocked on replies",
            stats.attempts,
            stats.successes,
            stats.sheds,
            stats.link_faults,
            stats.retries,
            stats.reconnects,
            stats.backoff_waits,
            stats.backoff_ns / 1_000,
            wire_stats.wait_ns / 1_000,
        );
        assert_eq!(
            stats.attempts,
            stats.successes + stats.sheds + stats.link_faults,
            "client {k}: conservation law violated"
        );
        assert!(stats.reconnects >= 1, "the kill budget must have fired");
        assert_eq!(
            stats.successes,
            (ROUNDS * queries.len()) as u64,
            "client {k}: whole workload completed"
        );
        totals.attempts += stats.attempts;
        totals.successes += stats.successes;
        totals.sheds += stats.sheds;
        totals.link_faults += stats.link_faults;
        totals.retries += stats.retries;
        totals.reconnects += stats.reconnects;
        totals.backoff_waits += stats.backoff_waits;
        faults_total += faults;
        matches_total += matches;
    }
    assert!(matches_total > 0, "the workload must find documents");
    let chaos_report = hub.shutdown();
    assert_eq!(chaos_report.sheds, 0, "no budget pressure in this phase");
    assert_eq!(chaos_report.requests, totals.successes);

    // ── Phase 2: deterministic overload shed on a budget-starved hub ───────
    let pressure = Hub::spawn(
        seeded_server(&params, &indexer),
        HubConfig {
            max_hub_in_flight: 1,
            shed_retry_after: Duration::from_millis(2),
            batch_window: Duration::from_millis(300),
            batch_depth: 64,
            ..HubConfig::default()
        },
    );
    let shed_telemetry = {
        // Park one plain client's query in the batcher: it holds the only
        // budget slot for the whole 300 ms window. (A second idle connection
        // keeps the solo fast path off, so the query actually parks.)
        let _bystander = pressure.connect_memory();
        let mut occupant = NetClient::from_memory(pressure.connect_memory());
        let occupant_id = occupant.submit(&Request::Query(queries[0].clone()));
        occupant.flush().expect("flush occupant");
        while pressure.frames_accepted() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // The resilient client's first attempt is guaranteed to shed; it
        // backs off (honoring retry_after) until the window flushes.
        let mut resilient = ResilientClient::new(
            Box::new({
                let dialer = pressure.memory_dialer();
                move |_| {
                    let (r, w) = dialer.connect().split();
                    Ok((
                        Box::new(r) as Box<dyn mkse::net::LinkReader>,
                        Box::new(w) as Box<dyn mkse::net::LinkWriter>,
                    ))
                }
            }),
            RetryPolicy {
                max_attempts: 200,
                ..RetryPolicy::default()
            },
        )
        .with_first_request_id(5_000_001)
        .with_telemetry(resilience.clone());
        let reply = resilient
            .call(&Request::Query(queries[1].clone()))
            .expect("shed query completes after backoff");
        assert!(matches!(reply, Response::Search(_)));
        let shed_stats = resilient.stats();
        assert!(shed_stats.sheds >= 1, "the stampede must have shed");
        assert_eq!(
            shed_stats.attempts,
            shed_stats.successes + shed_stats.sheds + shed_stats.link_faults
        );
        totals.attempts += shed_stats.attempts;
        totals.successes += shed_stats.successes;
        totals.sheds += shed_stats.sheds;
        totals.link_faults += shed_stats.link_faults;
        totals.retries += shed_stats.retries;
        totals.reconnects += shed_stats.reconnects;
        totals.backoff_waits += shed_stats.backoff_waits;
        occupant
            .wait_take(occupant_id, Duration::from_secs(30))
            .expect("occupant reply");
        println!(
            "\n=== shed phase ===\nresilient client: {} attempts, {} shed with retry-after hints, \
             then completed",
            shed_stats.attempts, shed_stats.sheds
        );
        let report = pressure.shutdown();
        assert_eq!(report.sheds, shed_stats.sheds, "hub and client agree");
        report
    };

    // ── The resilience report: Prometheus + JSON off the shared registry ───
    let snapshot = resilience.snapshot();
    println!("\n=== resilience registry (Prometheus) ===");
    let prom = render_prometheus(&snapshot);
    for line in prom.lines().filter(|l| {
        l.contains("retries")
            || l.contains("reconnects")
            || l.contains("sheds")
            || l.contains("faults_injected")
            || l.contains("backoff_wait")
    }) {
        println!("{line}");
    }
    println!("\n=== resilience registry (JSON) ===");
    println!("{}", render_json(&snapshot));

    // Registry ↔ client conservation: the shared registry agrees with the
    // per-client accounting, and the rendered text carries the new series.
    assert_eq!(snapshot.counter("retries"), totals.retries);
    assert_eq!(snapshot.counter("reconnects"), totals.reconnects);
    assert_eq!(snapshot.counter("faults_injected"), faults_total);
    let backoff = snapshot
        .histograms
        .iter()
        .find(|h| h.stage == "backoff_wait")
        .expect("backoff_wait histogram present");
    assert_eq!(backoff.count, totals.backoff_waits);
    for series in ["retries", "reconnects", "faults_injected"] {
        assert!(
            prom.contains(series),
            "Prometheus render must carry {series}"
        );
    }
    assert!(prom.contains("backoff_wait"));
    let json = render_json(&snapshot);
    for series in ["retries", "reconnects", "faults_injected", "backoff_wait"] {
        assert!(json.contains(series), "JSON render must carry {series}");
    }
    // Hub-side sheds land in the *server's* registry (phase 2 hub) and in its
    // report — already asserted equal to the client's count above.
    assert_eq!(shed_telemetry.requests, 2, "occupant + resilient query");

    println!(
        "\nresilience: {} attempts = {} completed + {} shed + {} link faults \
         ({} faults injected, {} retries, {} reconnects) — all replies intact",
        totals.attempts,
        totals.successes,
        totals.sheds,
        totals.link_faults,
        faults_total,
        totals.retries,
        totals.reconnects,
    );
}
