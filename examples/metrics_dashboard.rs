//! The telemetry plane end to end: drive a Zipf-distributed query workload
//! through the envelope client, then fetch one `Request::MetricsSnapshot` over
//! the framed wire and render it as a Prometheus-style exposition and as JSON.
//!
//! The workload is deliberately skewed — a handful of hot keywords dominate,
//! like real search traffic — so with the result cache enabled the per-shard
//! hit/miss counters, the engine's stage histograms and the wire counters all
//! light up. Telemetry stays invisible to the protocol: enabling `Spans`
//! changes no reply byte, it only populates the registry this dashboard reads.
//!
//! Run with: `cargo run --release --example metrics_dashboard`

use mkse::core::{DocumentIndexer, QueryBuilder, SchemeKeys, SystemParams, TelemetryLevel};
use mkse::protocol::{
    render_json, render_prometheus, BatchQueryMessage, Client, CloudServer, QueryMessage,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sample an index in `0..weights.len()` proportionally to `weights`.
fn weighted_sample<R: Rng>(rng: &mut R, weights: &[u64], total: u64) -> usize {
    let mut ticket = rng.gen_range(0..total);
    for (i, w) in weights.iter().enumerate() {
        if ticket < *w {
            return i;
        }
        ticket -= w;
    }
    weights.len() - 1
}

fn main() {
    let params = SystemParams::default();
    let mut rng = StdRng::seed_from_u64(7);
    let keys = SchemeKeys::generate(&params, &mut rng);
    let indexer = DocumentIndexer::new(&params, &keys);
    let pool = keys.random_pool_trapdoors(&params);

    // A corpus where every document carries a topic keyword plus some filler.
    let topics = [
        "alert",
        "invoice",
        "intrusion",
        "revenue",
        "backup",
        "audit",
        "phishing",
        "forecast",
    ];
    let num_docs = 64u64;
    let indices = (0..num_docs)
        .map(|id| {
            let topic = topics[id as usize % topics.len()];
            indexer.index_keywords(id, &[topic, "common", "filler"])
        })
        .collect();

    let mut server = Client::new(CloudServer::with_shards(params.clone(), 4));
    server.set_telemetry_level(TelemetryLevel::Spans);
    server.upload(indices, vec![]).expect("framed upload");
    server.enable_cache(64).expect("cache admin");

    // Zipf(1) popularity over the topics: topic k is drawn with weight 1/(k+1).
    // Repeated draws of a hot topic reuse one prebuilt query index per topic —
    // exactly the repeated-query-index traffic the result cache serves (fresh
    // randomized queries would, correctly, never hit it; see §6).
    let weights: Vec<u64> = (0..topics.len())
        .map(|k| 1_000_000 / (k as u64 + 1))
        .collect();
    let total: u64 = weights.iter().sum();
    let queries: Vec<QueryMessage> = topics
        .iter()
        .map(|topic| {
            let query = QueryBuilder::new(&params)
                .add_trapdoors(&keys.trapdoors_for(&params, &[topic]))
                .with_randomization(&pool)
                .build(&mut rng);
            QueryMessage {
                query: query.bits().clone(),
                top: None,
            }
        })
        .collect();

    // 48 single queries, Zipf-drawn, pipelined in windows of 8 …
    let mut matches_seen = 0usize;
    for _window in 0..6 {
        let ids: Vec<u64> = (0..8)
            .map(|_| {
                let topic = weighted_sample(&mut rng, &weights, total);
                server.submit(&mkse::protocol::Request::Query(queries[topic].clone()))
            })
            .collect();
        server.flush().expect("pipelined flush");
        for id in ids {
            let reply = Client::<CloudServer>::expect_search(
                server.take(id).expect("reply correlated by id"),
            )
            .expect("search reply");
            matches_seen += reply.matches.len();
        }
    }
    // … plus one fused batch with duplicated hot keywords (the batcher dedups).
    let batch = BatchQueryMessage {
        queries: (0..12)
            .map(|_| {
                queries[weighted_sample(&mut rng, &weights, total)]
                    .query
                    .clone()
            })
            .collect(),
        top: Some(3),
    };
    let batched = server.batch_query(&batch).expect("fused batch");
    matches_seen += batched
        .replies
        .iter()
        .map(|r| r.matches.len())
        .sum::<usize>();
    println!(
        "ran 48 Zipf-distributed queries + 1 fused batch of 12 ({matches_seen} matches total)\n"
    );

    // The dashboard read: one envelope op, round-tripping the framed codec.
    let snapshot = server.metrics_snapshot().expect("MetricsSnapshot envelope");
    println!("=== Prometheus exposition ===");
    print!("{}", render_prometheus(&snapshot));
    println!("\n=== JSON ===");
    println!("{}", render_json(&snapshot));

    // Sanity: the registry saw the workload this example just drove.
    assert_eq!(snapshot.level, TelemetryLevel::Spans);
    assert_eq!(snapshot.counter("queries"), 48);
    assert_eq!(snapshot.counter("batches"), 1);
    assert_eq!(snapshot.counter("batch_queries"), 12);
    assert!(snapshot.counter("wire_frames_in") >= 49);
    assert!(snapshot.counter("wire_bytes_out") > 0);
    let hits: u64 = snapshot.shard_caches.iter().map(|s| s.hits).sum();
    assert!(hits > 0, "a Zipf workload must hit the result cache");
    assert!(
        snapshot.histograms.iter().any(|h| h.stage == "unit_scan"),
        "span level records per-unit scan durations"
    );
}
