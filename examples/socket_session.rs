//! The socket transport end to end: one hub owning a cached, telemetry-enabled
//! `CloudServer`, four concurrent TCP clients driving mixed traffic — pipelined
//! single queries (hot repeats), a batched-query message, an upload — and then
//! a dashboard read over the same wire: the per-connection wire section and the
//! cross-client batcher section of the server's `MetricsSnapshot`.
//!
//! The cross-client batcher coalesces single `Request::Query` frames that
//! arrive within the collection window into one fused scan-plane pass; the
//! asserts at the bottom check the conservation laws that make it invisible
//! (every single query is either coalesced or dispatched solo, every frame in
//! is answered by a frame out) rather than timing-dependent quantities.
//!
//! Run with: `cargo run --release --example socket_session`

use mkse::core::{DocumentIndexer, QueryBuilder, SchemeKeys, SystemParams, TelemetryLevel};
use mkse::net::{Hub, HubConfig, NetClient};
use mkse::protocol::{
    BatchQueryMessage, CloudServer, QueryMessage, Request, Response, UploadMessage,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const CLIENTS: usize = 4;
const BURST: usize = 8;
const BATCH: usize = 6;
const REPEATS: usize = 4;
const WAIT: Duration = Duration::from_secs(60);

fn main() {
    let params = SystemParams::default();
    let mut rng = StdRng::seed_from_u64(11);
    let keys = SchemeKeys::generate(&params, &mut rng);
    let indexer = DocumentIndexer::new(&params, &keys);
    let pool = keys.random_pool_trapdoors(&params);

    let topics = [
        "alert",
        "invoice",
        "intrusion",
        "revenue",
        "backup",
        "audit",
        "phishing",
        "forecast",
    ];
    let indices = (0..32u64)
        .map(|id| {
            let topic = topics[id as usize % topics.len()];
            indexer.index_keywords(id, &[topic, "common", "filler"])
        })
        .collect();

    let mut server = CloudServer::with_shards(params.clone(), 2);
    server.set_telemetry_level(TelemetryLevel::Spans);
    server.upload(indices, vec![]).expect("seed upload");
    server.enable_result_cache(64);

    // One prebuilt query per topic: repeats arrive as identical bytes, which is
    // exactly the traffic the result cache (and the batcher's fused dedup)
    // serves. Every client shares the same set — cross-client repeats too.
    let queries: Vec<QueryMessage> = topics
        .iter()
        .map(|topic| {
            let query = QueryBuilder::new(&params)
                .add_trapdoors(&keys.trapdoors_for(&params, &[topic]))
                .with_randomization(&pool)
                .build(&mut rng);
            QueryMessage {
                query: query.bits().clone(),
                top: None,
            }
        })
        .collect();
    // Each client also uploads one late document mid-session (a batcher
    // barrier and a cache invalidation for the shard it lands in).
    let uploads: Vec<UploadMessage> = (0..CLIENTS as u64)
        .map(|k| UploadMessage {
            indices: vec![indexer.index_keywords(100 + k, &["audit", "late", "arrival"])],
            documents: vec![],
        })
        .collect();

    let hub = Hub::spawn(
        server,
        HubConfig {
            batch_window: Duration::from_millis(2),
            batch_depth: 8,
            ..HubConfig::default()
        },
    );
    let addr = hub.bind_tcp("127.0.0.1:0").expect("bind");

    // Connect all four sockets before any traffic flows, then let the client
    // threads loose concurrently.
    let clients: Vec<NetClient> = (0..CLIENTS)
        .map(|k| {
            NetClient::connect_tcp(addr)
                .expect("connect")
                .with_first_request_id(k as u64 * 1_000_000 + 1)
        })
        .collect();
    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(k, mut client)| {
            let queries = queries.clone();
            let upload = uploads[k].clone();
            std::thread::spawn(move || {
                let mut matches = 0usize;
                // Pipelined burst: submit a window of hot single queries,
                // flush once, correlate replies by id.
                let ids: Vec<u64> = (0..BURST)
                    .map(|i| {
                        client.submit(&Request::Query(queries[(k + i) % queries.len()].clone()))
                    })
                    .collect();
                client.flush().expect("flush burst");
                for id in ids {
                    match client.wait_take(id, WAIT).expect("burst reply") {
                        Response::Search(reply) => matches += reply.matches.len(),
                        other => panic!("expected Search, got {}", other.name()),
                    }
                }
                // One batched-query envelope (its own fused pass, a barrier
                // for the cross-client batcher).
                let batch = Request::BatchQuery(BatchQueryMessage {
                    queries: (0..BATCH)
                        .map(|i| queries[(k + i) % queries.len()].query.clone())
                        .collect(),
                    top: Some(3),
                });
                match client.call(&batch, WAIT).expect("batch reply") {
                    Response::BatchSearch(reply) => {
                        matches += reply.replies.iter().map(|r| r.matches.len()).sum::<usize>()
                    }
                    other => panic!("expected BatchSearch, got {}", other.name()),
                }
                // The upload, then the hot queries again — now partly warm.
                match client
                    .call(&Request::Upload(upload), WAIT)
                    .expect("upload reply")
                {
                    Response::Uploaded { .. } => {}
                    other => panic!("expected Uploaded, got {}", other.name()),
                }
                for i in 0..REPEATS {
                    let q = Request::Query(queries[(k + i) % queries.len()].clone());
                    match client.call(&q, WAIT).expect("repeat reply") {
                        Response::Search(reply) => matches += reply.matches.len(),
                        other => panic!("expected Search, got {}", other.name()),
                    }
                }
                (client.wire_stats(), matches)
            })
        })
        .collect();

    println!("=== client wire ===");
    let mut matches_total = 0usize;
    let mut frames_sent_total = 0u64;
    for (k, worker) in workers.into_iter().enumerate() {
        let (stats, matches) = worker.join().expect("client thread");
        println!(
            "client {k}: {} frames / {} bytes sent, {} frames / {} bytes received, {matches} matches",
            stats.frames_sent, stats.bytes_sent, stats.frames_received, stats.bytes_received
        );
        matches_total += matches;
        frames_sent_total += stats.frames_sent;
    }

    // The dashboard read travels the same transport: a fifth (in-process)
    // connection asking for the telemetry snapshot.
    let mut admin = NetClient::from_memory(hub.connect_memory()).with_first_request_id(9_000_000);
    let snapshot = match admin
        .call(&Request::MetricsSnapshot, WAIT)
        .expect("metrics snapshot over the wire")
    {
        Response::MetricsReport(snapshot) => snapshot,
        other => panic!("expected MetricsReport, got {}", other.name()),
    };

    println!("\n=== server wire (per connection) ===");
    for conn in &snapshot.connections {
        println!(
            "connection {}: {} frames / {} bytes in, {} frames / {} bytes out",
            conn.connection, conn.frames_in, conn.bytes_in, conn.frames_out, conn.bytes_out
        );
    }

    println!("\n=== batcher ===");
    let coalesced = snapshot.counter("batcher_coalesced_queries");
    let solo = snapshot.counter("batcher_solo_dispatches");
    let flushes = snapshot.counter("batcher_flush_window")
        + snapshot.counter("batcher_flush_depth")
        + snapshot.counter("batcher_flush_barrier")
        + snapshot.counter("batcher_flush_shutdown");
    println!(
        "coalesced {coalesced} queries into {flushes} fused flushes ({} window / {} depth / {} barrier / {} shutdown), {solo} solo dispatches",
        snapshot.counter("batcher_flush_window"),
        snapshot.counter("batcher_flush_depth"),
        snapshot.counter("batcher_flush_barrier"),
        snapshot.counter("batcher_flush_shutdown"),
    );
    let occupancy = snapshot
        .values
        .iter()
        .find(|v| v.series == "batch_occupancy");
    if let Some(occupancy) = occupancy {
        println!(
            "batch occupancy: {} flushes, avg {} queries per fused pass",
            occupancy.count,
            occupancy.sum / occupancy.count.max(1)
        );
    }
    let waits = snapshot
        .histograms
        .iter()
        .find(|h| h.stage == "batcher_wait");
    if let Some(waits) = waits {
        println!(
            "batcher wait: {} samples, avg {} ns in the collection window",
            waits.count,
            waits.sum_ns / waits.count.max(1)
        );
    }

    // Conservation laws (timing-independent, so CI can run this example):
    let singles = (CLIENTS * (BURST + REPEATS)) as u64;
    assert_eq!(
        coalesced + solo,
        singles,
        "every single query is dispatched exactly once"
    );
    assert_eq!(
        occupancy.map(|o| o.sum).unwrap_or(0),
        coalesced,
        "occupancy samples account for every coalesced query"
    );
    assert_eq!(
        occupancy.map(|o| o.count).unwrap_or(0),
        flushes,
        "one occupancy sample per fused flush"
    );
    // Engine-side accounting: coalesced + batch-envelope queries run fused,
    // solo ones on the single-query path.
    assert_eq!(
        snapshot.counter("queries") + snapshot.counter("batch_queries"),
        singles + (CLIENTS * BATCH) as u64,
    );
    // Every frame in was answered: clients saw all their replies, and the
    // admin's own request frame was recorded before this snapshot was taken.
    assert_eq!(snapshot.counter("wire_frames_in"), frames_sent_total + 1);
    assert_eq!(snapshot.counter("wire_frames_out"), frames_sent_total);
    let conn_frames_in: u64 = snapshot.connections.iter().map(|c| c.frames_in).sum();
    assert_eq!(conn_frames_in, frames_sent_total + 1);
    assert_eq!(snapshot.counter("connections_opened"), CLIENTS as u64 + 1);
    assert!(matches_total > 0, "the workload must find documents");
    let hits: u64 = snapshot.shard_caches.iter().map(|s| s.hits).sum();
    assert!(hits > 0, "hot repeated queries must hit the result cache");

    drop(admin);
    let report = hub.shutdown();
    assert_eq!(report.requests, frames_sent_total + 1);
    println!(
        "\nhub served {} requests over {} connections, then drained cleanly",
        report.requests, report.connections
    );
}
