//! Multi-user search: the property that distinguishes this scheme from data-owner-only
//! designs (§1: "a group of users can query the database provided that they possess trapdoors
//! for search terms").
//!
//! Two analysts are authorized by the data owner. Each one requests only the bins covering the
//! keywords they care about, so neither can build trapdoors for keywords outside their bins,
//! and the data owner learns only bin ids — never the actual keywords.
//!
//! Run with: `cargo run --release --example multi_user_sharing`

use mkse::core::bins_for_keywords;
use mkse::protocol::{Client, CloudServer, DataOwner, OwnerConfig, QueryMessage, User};
use mkse::textproc::{normalize_keyword, Document};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let config = OwnerConfig {
        rsa_modulus_bits: 512,
        ..OwnerConfig::default()
    };

    // Offline: the owner indexes and encrypts the shared corpus.
    let corpus = vec![
        Document::from_text(0, "merger negotiation strategy and legal review"),
        Document::from_text(1, "network intrusion detection and firewall logs"),
        Document::from_text(2, "legal contract templates for supplier agreements"),
        Document::from_text(3, "intrusion response playbook for the security team"),
    ];
    let mut owner = DataOwner::new(config, &mut rng);
    let (indices, encrypted) = owner.prepare_documents(&corpus, &mut rng);
    // The server sits behind the envelope client: even the offline upload is a
    // framed Request::Upload, and every query below travels the same way.
    let mut server = Client::new(CloudServer::new(owner.params().clone()));
    server.upload(indices, encrypted).expect("upload");

    // Two users with different interests register with the owner.
    let mut legal_analyst = User::new(
        1,
        owner.params().clone(),
        owner.public_key().clone(),
        512,
        &mut rng,
    );
    let mut security_analyst = User::new(
        2,
        owner.params().clone(),
        owner.public_key().clone(),
        512,
        &mut rng,
    );
    owner.register_user(legal_analyst.id(), legal_analyst.public_key().clone());
    owner.register_user(security_analyst.id(), security_analyst.public_key().clone());
    legal_analyst.set_random_pool(owner.random_pool_trapdoors());
    security_analyst.set_random_pool(owner.random_pool_trapdoors());

    let run = |user: &mut User,
               owner: &mut DataOwner,
               server: &mut Client<CloudServer>,
               raw: &[&str],
               rng: &mut StdRng| {
        let normalized: Vec<String> = raw.iter().map(|w| normalize_keyword(w)).collect();
        let refs: Vec<&str> = normalized.iter().map(|s| s.as_str()).collect();
        let bins = bins_for_keywords(owner.params(), &refs);
        println!(
            "user {} searches {raw:?}; the owner only learns bin ids {bins:?}",
            user.id()
        );
        if let Some(req) = user.make_trapdoor_request(&refs) {
            let reply = owner
                .handle_trapdoor_request(&req)
                .expect("authorized user");
            user.ingest_trapdoor_reply(&reply).unwrap();
        }
        let query = user.build_query(&refs, None, rng).unwrap();
        let results = server
            .query(&QueryMessage {
                query: query.query,
                top: None,
            })
            .expect("framed query round trip");
        let ids: Vec<u64> = results.matches.iter().map(|m| m.document_id).collect();
        println!("  matching documents: {ids:?}\n");
        ids
    };

    let legal_hits = run(
        &mut legal_analyst,
        &mut owner,
        &mut server,
        &["legal", "contract"],
        &mut rng,
    );
    let security_hits = run(
        &mut security_analyst,
        &mut owner,
        &mut server,
        &["intrusion"],
        &mut rng,
    );

    assert!(legal_hits.contains(&2));
    assert!(security_hits.contains(&1) && security_hits.contains(&3));

    // The security analyst never received the bins for the legal keywords, so they cannot even
    // form a valid trapdoor for "contract" locally.
    let contract = normalize_keyword("contract");
    match security_analyst.build_query(&[contract.as_str()], None, &mut rng) {
        Err(e) => println!("security analyst cannot query legal keywords without those bins: {e}"),
        Ok(_) => println!(
            "(bin collision: the keyword happened to share a bin the analyst already holds)"
        ),
    }
}
