//! Search-pattern privacy (§6): query randomization makes repeated queries for the same
//! keywords look like unrelated queries.
//!
//! The example issues the same two-keyword query many times (fresh random V-subsets each
//! time), issues unrelated queries as a control group, and compares the Hamming-distance
//! distributions — the server-side view an adversary would use for linking. It also prints the
//! analytic expectations F(x), Δ(x, x̄) and EO from §6 next to the measurements, and verifies
//! that randomization never changes the search results.
//!
//! Run with: `cargo run --release --example search_pattern_privacy`

use mkse::core::{
    expected_hamming_distance, expected_random_overlap, expected_zeros, DocumentIndexer, Histogram,
    QueryBuilder, SchemeKeys, SystemParams,
};
use mkse::protocol::{Client, CloudServer, QueryMessage};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let params = SystemParams::default();
    let mut rng = StdRng::seed_from_u64(99);
    let keys = SchemeKeys::generate(&params, &mut rng);
    let pool = keys.random_pool_trapdoors(&params);
    let trials = 400usize;

    // Analytic expectations for a 2-genuine-keyword query with V = 30 random keywords.
    let x = 2 + params.query_random_keywords;
    println!(
        "analytic model (r = {}, d = {}):",
        params.index_bits, params.digit_bits
    );
    println!(
        "  expected zero bits in a query index, F({x}) = {:.1}",
        expected_zeros(&params, x)
    );
    println!(
        "  expected distance, same genuine keywords,      Δ = {:.1}",
        expected_hamming_distance(
            &params,
            x,
            2 + expected_random_overlap(params.query_random_keywords) as usize
        )
    );
    println!(
        "  expected distance, different genuine keywords, Δ = {:.1}\n",
        expected_hamming_distance(
            &params,
            x,
            expected_random_overlap(params.query_random_keywords) as usize
        )
    );

    // Measured distributions.
    let genuine = ["invoice", "fraud"];
    let trapdoors = keys.trapdoors_for(&params, &genuine);
    let mut same_hist = Histogram::new(100.0, 200.0, 10);
    let mut diff_hist = Histogram::new(100.0, 200.0, 10);
    for t in 0..trials {
        let q1 = QueryBuilder::new(&params)
            .add_trapdoors(&trapdoors)
            .with_randomization(&pool)
            .build(&mut rng);
        let q2 = QueryBuilder::new(&params)
            .add_trapdoors(&trapdoors)
            .with_randomization(&pool)
            .build(&mut rng);
        same_hist.record(q1.bits().hamming_distance(q2.bits()) as f64);

        let other = [format!("topic-{t}"), format!("term-{t}")];
        let other_refs: Vec<&str> = other.iter().map(|s| s.as_str()).collect();
        let other_td = keys.trapdoors_for(&params, &other_refs);
        let q3 = QueryBuilder::new(&params)
            .add_trapdoors(&other_td)
            .with_randomization(&pool)
            .build(&mut rng);
        diff_hist.record(q1.bits().hamming_distance(q3.bits()) as f64);
    }

    println!("measured Hamming distances over {trials} query pairs:");
    println!("  bucket      same-keywords   different-keywords");
    for i in 0..same_hist.counts().len() {
        println!(
            "  [{:>3.0},{:>3.0})   {:>13}   {:>18}",
            same_hist.bucket_start(i),
            same_hist.bucket_start(i) + 10.0,
            same_hist.counts()[i],
            diff_hist.counts()[i]
        );
    }
    println!(
        "\n  distribution overlap coefficient: {:.3} (1.0 = an adversary watching queries cannot \
         tell repeated searches from unrelated ones)",
        same_hist.overlap_coefficient(&diff_hist)
    );

    // Randomization must not change what the server returns — verified through
    // the production front door: a CloudServer behind the envelope Client, so
    // both queries travel as framed Request::Query envelopes.
    let indexer = DocumentIndexer::new(&params, &keys);
    let mut server = Client::new(CloudServer::new(params.clone()));
    server
        .upload(
            vec![
                indexer.index_keywords(0, &["invoice", "fraud", "report"]),
                indexer.index_keywords(1, &["holiday", "photos"]),
            ],
            vec![], // index-only upload: this example never retrieves documents
        )
        .expect("upload");
    let plain = QueryBuilder::new(&params)
        .add_trapdoors(&trapdoors)
        .build(&mut rng);
    let randomized = QueryBuilder::new(&params)
        .add_trapdoors(&trapdoors)
        .with_randomization(&pool)
        .build(&mut rng);
    let reply_for = |server: &mut Client<CloudServer>, bits| {
        server
            .query(&QueryMessage {
                query: bits,
                top: None,
            })
            .expect("framed query round trip")
    };
    let plain_reply = reply_for(&mut server, plain.bits().clone());
    let randomized_reply = reply_for(&mut server, randomized.bits().clone());
    assert_eq!(plain_reply.matches, randomized_reply.matches);
    println!("\nrandomized and plain queries return identical result sets — randomization is free in terms of correctness.");
}
