//! Pipelining through the envelope client: submit a window of framed requests,
//! flush them to the server in one go, and correlate the replies by request id —
//! including taking them **out of order**.
//!
//! A real deployment pays a network round trip per exchange; pipelining hides
//! that latency by keeping several requests in flight. This example drives the
//! whole lifecycle through framed `Request`/`Response` envelopes only — upload,
//! cache admin, a pipelined query window, server introspection — and prints the
//! measured framed wire bytes next to the analytic query sizes.
//!
//! Run with: `cargo run --release --example pipelined_client`

use mkse::core::{DocumentIndexer, QueryBuilder, SchemeKeys, SystemParams};
use mkse::protocol::{Client, CloudServer, QueryMessage, Request, Response};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let params = SystemParams::default();
    let mut rng = StdRng::seed_from_u64(42);
    let keys = SchemeKeys::generate(&params, &mut rng);
    let indexer = DocumentIndexer::new(&params, &keys);
    let pool = keys.random_pool_trapdoors(&params);

    // The archive: a few topical documents. Everything below — upload included —
    // travels as framed envelopes through the client.
    let topics: [&[&str]; 6] = [
        &["alert", "intrusion", "firewall"],
        &["invoice", "quarterly", "revenue"],
        &["alert", "phishing", "credentials"],
        &["maintenance", "cafeteria"],
        &["intrusion", "response", "playbook"],
        &["revenue", "forecast", "projection"],
    ];
    let mut server = Client::new(CloudServer::with_shards(params.clone(), 2));
    let stored = server
        .upload(
            topics
                .iter()
                .enumerate()
                .map(|(id, kws)| indexer.index_keywords(id as u64, kws))
                .collect(),
            vec![], // index-only: this example searches, it does not retrieve
        )
        .expect("framed upload");
    let info = server.server_info().expect("framed info round trip");
    println!(
        "uploaded {stored} documents ({} shards, r = {} bits, η = {} levels)\n",
        info.shards, info.index_bits, info.rank_levels
    );

    // A monitoring dashboard refreshes several saved searches at once. Build
    // each query once, then submit the WHOLE window before flushing: that is the
    // pipeline — one flush, many requests in flight.
    let searches: [(&str, &[&str]); 4] = [
        ("intrusions", &["intrusion"]),
        ("alerts", &["alert"]),
        ("revenue", &["revenue"]),
        ("playbooks", &["playbook"]),
    ];
    let mut ids = Vec::new();
    let before_queries = server.wire_stats();
    for (label, kws) in &searches {
        let query = QueryBuilder::new(&params)
            .add_trapdoors(&keys.trapdoors_for(&params, kws))
            .with_randomization(&pool)
            .build(&mut rng);
        let id = server.submit(&Request::Query(QueryMessage {
            query: query.bits().clone(),
            top: None,
        }));
        println!(
            "submitted {label:<12} as request #{id} ({} analytic query bits)",
            query.bits().len()
        );
        ids.push((id, *label));
    }
    assert_eq!(server.ready(), 0, "nothing executes before the flush");

    let replies = server.flush().expect("pipelined flush");
    println!("\nflushed once: {replies} replies arrived, correlating by id out of order\n");

    // Take the replies in REVERSE submission order — correlation is by request
    // id, so arrival/consumption order is irrelevant.
    for (id, label) in ids.iter().rev() {
        let response = server.take(*id).expect("reply correlated by id");
        let reply = match response {
            Response::Search(reply) => reply,
            other => panic!("expected a Search reply, got {}", other.name()),
        };
        let matched: Vec<u64> = reply.matches.iter().map(|m| m.document_id).collect();
        println!(
            "  #{id} {label:<12} -> {} match(es): {matched:?}",
            matched.len()
        );
    }

    let wire = server.wire_stats();
    let queries_only = wire.since(&before_queries);
    println!(
        "\nmeasured framed wire (whole session): {} request frames / {} bytes sent, \
         {} reply frames / {} bytes received",
        wire.frames_sent, wire.bytes_sent, wire.frames_received, wire.bytes_received
    );
    println!(
        "per pipelined query: ~{} framed request bytes vs {} analytic bits — the \
         envelope (length prefix + version + request id) costs a handful of bytes per frame",
        queries_only.bytes_sent / queries_only.frames_sent,
        params.index_bits
    );
}
