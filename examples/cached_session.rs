//! The server-side result cache under a realistic repeated-search workload: an
//! analyst keeps re-running a handful of saved searches (dashboards, polling,
//! "refresh the page") against an encrypted document archive.
//!
//! The user builds each query **once** and re-issues the same r-bit query index —
//! exactly what the server's fingerprint cache keys on. Replies carry a
//! `CacheReport` (shard hits/misses, saved comparisons), and the server's
//! `OperationCounters` split the Table 2 comparison count into work performed vs
//! work the cache saved.
//!
//! Search-pattern note: the cache recognizes repeated query *bytes*, which is the
//! search pattern the server already observes (§6 of the paper builds its attack
//! model on it) — caching leaks nothing new. The flip side is also shown below:
//! with query randomization enabled, fresh randomized queries for the *same
//! keywords* produce different bits and — correctly — miss the cache.
//!
//! Run with: `cargo run --release --example cached_session`

use mkse::protocol::{Client, CloudServer, DataOwner, OwnerConfig, QueryMessage, User};
use mkse::textproc::{normalize_keyword, Document};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn corpus() -> Vec<Document> {
    [
        "Quarterly security audit of the encrypted storage backend",
        "Encrypted cloud archive migration plan and key rotation schedule",
        "Phishing incident report: finance department credentials rotated",
        "Searchable encryption design notes for the outsourced archive",
        "Office plant maintenance rota and cafeteria menu",
        "Access control review: encryption key management procedures",
        "Marketing launch checklist for the European product release",
        "Data protection impact assessment for the cloud archive",
    ]
    .iter()
    .enumerate()
    .map(|(i, text)| Document::from_text(i as u64, text))
    .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(23);
    let config = OwnerConfig {
        rsa_modulus_bits: 512,
        ..OwnerConfig::default()
    };
    let rsa_bits = config.rsa_modulus_bits;

    // Offline phase: index + encrypt + upload, register the user, enable caching.
    let mut owner = DataOwner::new(config, &mut rng);
    let (indices, encrypted) = owner.prepare_documents(&corpus(), &mut rng);
    // The server sits behind the envelope client: upload and cache admin are
    // framed requests like everything else.
    let mut server = Client::new(CloudServer::new(owner.params().clone()));
    server.upload(indices, encrypted).expect("upload");
    server.enable_cache(128).expect("cache admin");
    let mut user = User::new(
        1,
        owner.params().clone(),
        owner.public_key().clone(),
        rsa_bits,
        &mut rng,
    );
    owner.register_user(user.id(), user.public_key().clone());
    user.set_random_pool(owner.random_pool_trapdoors());
    println!(
        "server: {} documents, {} index shards, result cache on\n",
        server.num_documents(),
        server.num_shards()
    );

    // The analyst's saved searches — overlapping multi-keyword queries, each
    // built ONCE (trapdoors fetched from the owner, randomization folded in).
    let saved_searches: Vec<(&str, Vec<String>)> = vec![
        (
            "encryption audit",
            vec!["encryption".into(), "audit".into()],
        ),
        (
            "encrypted archive",
            vec!["encrypted".into(), "archive".into()],
        ),
        ("key rotation", vec!["key".into(), "rotation".into()]),
    ];
    let mut queries: Vec<(String, QueryMessage)> = Vec::new();
    for (label, raw) in &saved_searches {
        let normalized: Vec<String> = raw.iter().map(|w| normalize_keyword(w)).collect();
        let refs: Vec<&str> = normalized.iter().map(|s| s.as_str()).collect();
        if let Some(request) = user.make_trapdoor_request(&refs) {
            let reply = owner.handle_trapdoor_request(&request).expect("trapdoors");
            user.ingest_trapdoor_reply(&reply).expect("bin keys");
        }
        let query = user.build_query(&refs, None, &mut rng).expect("query");
        queries.push((label.to_string(), query));
    }

    // The dashboard refreshes three times: each round re-issues the same bits.
    for round in 1..=3 {
        println!("== refresh round {round} ==");
        for (label, query) in &queries {
            let reply = server.query(query).expect("framed query round trip");
            let ids: Vec<u64> = reply.matches.iter().map(|m| m.document_id).collect();
            println!(
                "  {label:<18} -> {} matches {ids:?} | cache: {} hits / {} misses, \
                 {} comparisons saved{}",
                reply.matches.len(),
                reply.cache.shard_hits,
                reply.cache.shard_misses,
                reply.cache.saved_comparisons,
                if reply.cache.served_from_cache {
                    " (served from cache)"
                } else {
                    ""
                }
            );
        }
    }

    // A freshly randomized query for the same keywords misses, by design.
    let normalized: Vec<String> = ["encryption", "audit"]
        .iter()
        .map(|w| normalize_keyword(w))
        .collect();
    let refs: Vec<&str> = normalized.iter().map(|s| s.as_str()).collect();
    let fresh = user.build_query(&refs, None, &mut rng).expect("query");
    let reply = server.query(&fresh).expect("framed query round trip");
    println!(
        "\nfresh randomized query for \"encryption audit\": {} hits / {} misses \
         (randomization hides the search pattern, so the cache cannot see the repeat)",
        reply.cache.shard_hits, reply.cache.shard_misses
    );

    let stats = server
        .remote_cache_stats()
        .expect("framed stats round trip")
        .expect("cache enabled");
    let wire = server.wire_stats();
    let counters = server.counters();
    println!("\n== totals ==");
    println!(
        "wire: {} request frames / {} bytes sent, {} reply frames / {} bytes received",
        wire.frames_sent, wire.bytes_sent, wire.frames_received, wire.bytes_received
    );
    println!(
        "cache: {} hits, {} misses, {} evictions, {} invalidations",
        stats.hits, stats.misses, stats.evictions, stats.invalidations
    );
    println!(
        "server comparisons: {} performed, {} saved by cache ({} replies served \
         entirely from cache)",
        counters.binary_comparisons,
        counters.comparisons_saved_by_cache,
        counters.cache_served_replies
    );
}
